//! The multi-tenant server: prepared program artifacts shared across
//! sessions, per-session runtimes, per-worker result shards, and the
//! executor gluing them.
//!
//! [`Server::start`] compiles every (program, variant) in the request
//! mix **once** ([`rtj_interp::prepare`]) and shares the immutable
//! artifacts by `Arc` across all sessions; each submitted session then
//! builds a fresh [`rtj_runtime::Runtime`] inside the worker thread
//! ([`rtj_interp::run_prepared`]), so tenants share *code* but never
//! *state*. The `Runtime: Send` audit in rtj-runtime plus the global
//! string interner (PR 1) are the only cross-session surfaces.
//!
//! # Result aggregation: sharing serialized by construction
//!
//! Completed sessions land in **per-worker result shards**: worker `w`
//! appends to shard `w` (its own `Vec<SessionResult>` plus incrementally
//! merged per-(mode, engine) `rtj-metrics/v1` accumulators), so the hot
//! path never touches a lock another thread wants — the
//! regions-and-locks framing (Gerakios et al.) applied to the serving
//! layer: exclusive ownership instead of a global results mutex. The
//! shards are merged **once**, at [`Server::finish`], and sorting by
//! session id restores the deterministic result order, so byte-identity
//! across `--workers` is unaffected.
//!
//! # Admission control and deadline shedding
//!
//! With [`ServeConfig::deadline`] set, a session whose deadline
//! (scheduled arrival + deadline) has already passed is **shed**:
//! either at admission (before it ever reaches the executor) or in the
//! queue (a worker claims it, sees the deadline expired, and skips the
//! engine). Shed sessions produce a [`SessionResult`] with
//! [`ShedStage`] set and empty virtual outcome; they are reported in
//! the `sessions.shed` block of `rtj-load/v1` and excluded from the
//! executed population the Figure-12 ledger is computed over.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rtj_interp::{prepare, run_prepared, Engine, Prepared, RunConfig, RunError};
use rtj_runtime::{CheckMode, MetricsSnapshot};

use crate::executor::{resolve_workers, Executor, ExecutorStats};
use crate::session::{SessionResult, SessionSpec, ShedStage};
use crate::telemetry::{
    EventKind, FlightRecorder, Sampler, ServerTrace, Telemetry, TelemetryConfig, Timeline,
    TimelineSample,
};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (0 = the machine's available parallelism).
    pub workers: usize,
    /// Executor queue capacity; 0 = unbounded (measure backlog instead
    /// of throttling the submitter).
    pub queue_capacity: usize,
    /// Which server programs to serve (subset of
    /// [`rtj_corpus::SERVER_PROGRAMS`]).
    pub programs: Vec<String>,
    /// Request variants per program (distinct baked-in `seq` values,
    /// each compiled once).
    pub variants: u32,
    /// Check modes in the request mix.
    pub modes: Vec<CheckMode>,
    /// Engines in the request mix.
    pub engines: Vec<Engine>,
    /// Per-session deadline, measured from the scheduled arrival.
    /// `None` disables shedding. Sessions past their deadline are shed
    /// at admission or in the queue instead of executed.
    pub deadline: Option<Duration>,
    /// Simulated downstream stall per session (a real `thread::sleep`
    /// inside the worker, after the engine run). Models request handlers
    /// blocked on external I/O; lets worker sweeps measure executor
    /// concurrency independent of host core count. Zero disables it.
    pub stall_us: u64,
    /// Fault injection: the session id (if any) whose job panics instead
    /// of running — exercises panic containment (the session is recorded
    /// as failed; the round completes).
    pub panic_session: Option<u64>,
    /// Flight-recorder options. `None` (the default) disables telemetry
    /// entirely: the per-event hooks compile down to one untaken
    /// `Option` branch each and no sampler thread is spawned, so the
    /// disabled path costs nothing measurable (asserted by the
    /// `telemetry_overhead` bench) and session results are byte-identical
    /// either way (asserted by the fingerprint-identity tests).
    pub telemetry: Option<TelemetryConfig>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 0,
            queue_capacity: 0,
            programs: rtj_corpus::SERVER_PROGRAMS
                .iter()
                .map(|s| s.to_string())
                .collect(),
            variants: 4,
            modes: vec![CheckMode::Static, CheckMode::Dynamic, CheckMode::Audit],
            engines: vec![Engine::Vm],
            deadline: None,
            stall_us: 0,
            panic_session: None,
            telemetry: None,
        }
    }
}

/// A server start-up failure: unknown program name or a variant that
/// failed to build (parse/type-check).
#[derive(Debug)]
pub struct ServeError {
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ServeError {}

/// One entry of the request mix: a compiled (program, variant) under a
/// (mode, engine). Session id `s` maps to `mix[s % mix.len()]`.
struct MixEntry {
    /// Interned program name — cloned per session as a refcount bump,
    /// never a heap copy, so the 60k/s submit path stays allocation-light.
    program: Arc<str>,
    variant: u32,
    mode: CheckMode,
    engine: Engine,
    prepared: Arc<Prepared>,
}

/// Sessions shed instead of executed, by stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShedStats {
    /// Shed at admission: the deadline had passed before the session
    /// reached the executor.
    pub admission: u64,
    /// Shed in queue: a worker claimed the session after its deadline.
    pub queue: u64,
}

impl ShedStats {
    /// Total shed sessions.
    pub fn total(&self) -> u64 {
        self.admission + self.queue
    }
}

/// Everything a finished serving run produced.
#[derive(Debug)]
pub struct ServeOutcome {
    /// Per-session results (executed and shed), sorted by session id.
    pub results: Vec<SessionResult>,
    /// Final executor counters.
    pub stats: ExecutorStats,
    /// Per-mode merged `rtj-metrics/v1` snapshots over executed
    /// sessions, accumulated incrementally in the worker shards and
    /// merged once at drain. Ordered by first appearance in session-id
    /// order.
    pub mode_metrics: Vec<(CheckMode, MetricsSnapshot)>,
    /// Shed counts by stage.
    pub shed: ShedStats,
    /// Flight-recorder output (trace, timeline, per-session stages);
    /// `None` unless [`ServeConfig::telemetry`] was set.
    pub telemetry: Option<Telemetry>,
}

/// One worker's private result aggregation: owned by exactly one worker
/// thread while the run is live (the mutex is uncontended; it exists to
/// hand the shard to `finish` safely).
#[derive(Debug, Default)]
struct ResultShard {
    results: Vec<SessionResult>,
    /// Incrementally merged per-(mode, engine) snapshots of executed
    /// sessions — the streaming aggregation that replaces a re-merge
    /// over every per-session snapshot at report time.
    metrics: Vec<((CheckMode, Engine), MetricsSnapshot)>,
}

impl ResultShard {
    fn record(&mut self, result: SessionResult) {
        if result.shed.is_none() {
            let key = (result.spec.mode, result.spec.engine);
            match self.metrics.iter_mut().find(|(k, _)| *k == key) {
                Some((_, merged)) => merged.merge(&result.metrics),
                None => {
                    let mut merged = MetricsSnapshot {
                        mode: result.spec.mode,
                        ..Default::default()
                    };
                    merged.merge(&result.metrics);
                    self.metrics.push((key, merged));
                }
            }
        }
        self.results.push(result);
    }
}

/// The running server. `submit` is cheap (boxes a closure, bumps
/// refcounts); all engine work happens on the executor's workers.
pub struct Server {
    executor: Executor,
    mix: Vec<Arc<MixEntry>>,
    /// One result shard per worker, indexed by executing-worker id.
    shards: Arc<Vec<Mutex<ResultShard>>>,
    /// Admission-shed results, owned by the submitting thread (the
    /// drivers submit from one thread; this mutex is uncontended).
    admission_shed: Mutex<Vec<SessionResult>>,
    shed_admission: Arc<AtomicU64>,
    shed_queue: Arc<AtomicU64>,
    /// Sessions whose engine run panicked. The server contains the
    /// unwind *inside* the job (to record a failed result), so the
    /// executor's own counter never sees it; this one does.
    panicked: Arc<AtomicU64>,
    deadline: Option<Duration>,
    stall: Duration,
    panic_session: Option<u64>,
    /// Flight recorder, when telemetry is on. Submitter-side events go
    /// to the extra submitter lane; worker-side events are recorded from
    /// inside the job closures onto the executing worker's lane.
    recorder: Option<Arc<FlightRecorder>>,
    sampler: Option<Sampler>,
    telemetry_tick_us: u64,
}

impl Server {
    /// Compiles the request mix and starts the workers.
    ///
    /// The mix is the cross product *mode-major*:
    /// `modes × engines × programs × variants`. A whole number of mix
    /// rounds therefore runs every (program, variant) pair under every
    /// mode equally often, which is what makes the Figure-12 ledger
    /// (`static.elided == dynamic.performed`) hold **exactly** on the
    /// merged per-session snapshots.
    pub fn start(cfg: &ServeConfig) -> Result<Server, ServeError> {
        if cfg.programs.is_empty() || cfg.modes.is_empty() || cfg.engines.is_empty() {
            return Err(ServeError {
                message: "empty request mix (need >= 1 program, mode, and engine)".into(),
            });
        }
        // Compile each (program, variant) once; share across modes and
        // engines.
        let mut compiled: Vec<(Arc<str>, u32, Arc<Prepared>)> = Vec::new();
        for name in &cfg.programs {
            let sources =
                rtj_corpus::request_variants(name, cfg.variants).ok_or_else(|| ServeError {
                    message: format!(
                        "unknown server program `{name}` (expected one of {})",
                        rtj_corpus::SERVER_PROGRAMS.join(", ")
                    ),
                })?;
            let name: Arc<str> = Arc::from(name.as_str());
            for (variant, src) in sources.iter().enumerate() {
                let checked = rtj_interp::build(src).map_err(|e| ServeError {
                    message: format!("{name} variant {variant} failed to build: {e:?}"),
                })?;
                compiled.push((
                    Arc::clone(&name),
                    variant as u32,
                    Arc::new(prepare(&checked)),
                ));
            }
        }
        let mut mix = Vec::new();
        for mode in &cfg.modes {
            for engine in &cfg.engines {
                for (program, variant, prepared) in &compiled {
                    mix.push(Arc::new(MixEntry {
                        program: Arc::clone(program),
                        variant: *variant,
                        mode: *mode,
                        engine: *engine,
                        prepared: Arc::clone(prepared),
                    }));
                }
            }
        }
        let workers = resolve_workers(cfg.workers);
        let recorder = cfg
            .telemetry
            .as_ref()
            .map(|_| Arc::new(FlightRecorder::new(workers)));
        let executor = Executor::with_recorder(workers, cfg.queue_capacity, recorder.clone());
        let shards = Arc::new(
            (0..executor.workers())
                .map(|_| Mutex::new(ResultShard::default()))
                .collect::<Vec<_>>(),
        );
        let shed_admission = Arc::new(AtomicU64::new(0));
        let shed_queue = Arc::new(AtomicU64::new(0));
        let panicked = Arc::new(AtomicU64::new(0));
        let sampler = cfg.telemetry.as_ref().map(|t| {
            let probe = executor.probe();
            let rec = Arc::clone(recorder.as_ref().expect("recorder set with telemetry"));
            let shed_a = Arc::clone(&shed_admission);
            let shed_q = Arc::clone(&shed_queue);
            Sampler::start(t.tick, move || {
                let s = probe.sample();
                TimelineSample {
                    ts_us: rec.now_us(),
                    in_flight: s.in_flight,
                    queued: s.queued,
                    completed: s.completed,
                    shed: shed_a.load(Ordering::Relaxed) + shed_q.load(Ordering::Relaxed),
                    throughput_hz: 0.0,
                    workers: s.workers,
                }
            })
        });
        Ok(Server {
            executor,
            mix,
            shards,
            admission_shed: Mutex::new(Vec::new()),
            shed_admission,
            shed_queue,
            panicked,
            deadline: cfg.deadline,
            stall: Duration::from_micros(cfg.stall_us),
            panic_session: cfg.panic_session,
            recorder,
            sampler,
            telemetry_tick_us: cfg
                .telemetry
                .as_ref()
                .map(|t| t.tick.as_micros() as u64)
                .unwrap_or(0),
        })
    }

    /// Requests per mix round (`modes × engines × programs × variants`).
    pub fn mix_len(&self) -> usize {
        self.mix.len()
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.executor.workers()
    }

    /// The spec session `session` will run — a pure function of the id.
    pub fn spec(&self, session: u64) -> SessionSpec {
        let entry = &self.mix[(session as usize) % self.mix.len()];
        SessionSpec {
            session,
            program: Arc::clone(&entry.program),
            variant: entry.variant,
            mode: entry.mode,
            engine: entry.engine,
        }
    }

    /// Submits session `session`, anchored to `scheduled` for latency
    /// accounting (pass the open-loop arrival time, or `Instant::now()`
    /// for an unpaced batch). Blocks only when the executor queue is at
    /// capacity. With a deadline configured, a session already past it
    /// is shed here (admission) and never reaches the executor.
    pub fn submit(&self, session: u64, scheduled: Instant) {
        let entry = Arc::clone(&self.mix[(session as usize) % self.mix.len()]);
        let deadline = self.deadline.map(|d| scheduled + d);
        let rec = self.recorder.clone();
        let submit_lane = self.executor.workers();
        if let Some(r) = &rec {
            r.record(submit_lane, EventKind::Submit, Some(session));
        }

        // Shed on admission: the deadline passed while the submitter
        // itself was behind — refuse before paying for the queue.
        if let Some(dl) = deadline {
            if Instant::now() >= dl {
                if let Some(r) = &rec {
                    r.record(submit_lane, EventKind::Shed, Some(session));
                }
                self.shed_admission.fetch_add(1, Ordering::Relaxed);
                self.admission_shed.lock().unwrap().push(shed_result(
                    &entry,
                    session,
                    scheduled,
                    ShedStage::Admission,
                ));
                return;
            }
        }
        if let Some(r) = &rec {
            r.record(submit_lane, EventKind::Admit, Some(session));
        }

        let shards = Arc::clone(&self.shards);
        let shed_queue = Arc::clone(&self.shed_queue);
        let panicked = Arc::clone(&self.panicked);
        let stall = self.stall;
        let panic_session = self.panic_session;
        // Pin session `s` to shard `s % workers` — the same round-robin
        // spread the single-threaded drivers got from the ticket counter,
        // but with a shard choice the job closure can compare against its
        // executing worker to detect steals.
        let shard = (session as usize) % self.executor.workers();
        if let Some(r) = &rec {
            r.record(submit_lane, EventKind::Enqueue, Some(session));
        }
        self.executor.submit_to(
            shard,
            Box::new(move |worker: usize| {
                if let Some(r) = &rec {
                    r.record(worker, EventKind::Dequeue, Some(session));
                    if worker != shard {
                        r.record(worker, EventKind::Steal, Some(session));
                    }
                }
                // Shed in queue: claimed too late to matter.
                if let Some(dl) = deadline {
                    if Instant::now() >= dl {
                        if let Some(r) = &rec {
                            r.record(worker, EventKind::Shed, Some(session));
                        }
                        shed_queue.fetch_add(1, Ordering::Relaxed);
                        let result = shed_result(&entry, session, scheduled, ShedStage::Queue);
                        shards[worker].lock().unwrap().record(result);
                        return;
                    }
                }
                let mut cfg = RunConfig::new(entry.mode);
                cfg.engine = entry.engine;
                cfg.session = session;
                if let Some(r) = &rec {
                    r.record(worker, EventKind::RunStart, Some(session));
                }
                // Contain unwinds *before* touching the shard lock: a
                // panicking session is recorded as failed and can neither
                // poison the shard nor wedge the batch.
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    if panic_session == Some(session) {
                        panic!("injected fault: session {session}");
                    }
                    run_prepared(&entry.prepared, cfg)
                }));
                if !stall.is_zero() {
                    // Simulated downstream I/O: the worker is occupied but
                    // off-CPU, exactly like a handler awaiting an upstream.
                    std::thread::sleep(stall);
                }
                if outcome.is_err() {
                    panicked.fetch_add(1, Ordering::Relaxed);
                }
                if let Some(r) = &rec {
                    r.record(worker, EventKind::RunEnd, Some(session));
                    if outcome.is_err() {
                        r.record(worker, EventKind::Panic, Some(session));
                    }
                }
                let mut result = match outcome {
                    Ok(outcome) => SessionResult {
                        spec: SessionSpec {
                            session,
                            program: Arc::clone(&entry.program),
                            variant: entry.variant,
                            mode: entry.mode,
                            engine: entry.engine,
                        },
                        cycles: outcome.cycles,
                        metrics: outcome.metrics,
                        output: outcome.trace,
                        error: outcome.error,
                        shed: None,
                        service_us: outcome.wall.as_micros() as u64,
                        latency_us: 0,
                    },
                    Err(payload) => {
                        let msg = panic_message(payload.as_ref());
                        SessionResult {
                            spec: SessionSpec {
                                session,
                                program: Arc::clone(&entry.program),
                                variant: entry.variant,
                                mode: entry.mode,
                                engine: entry.engine,
                            },
                            cycles: 0,
                            metrics: MetricsSnapshot {
                                mode: entry.mode,
                                ..Default::default()
                            },
                            output: Vec::new(),
                            error: Some(RunError::Interp(format!("session panicked: {msg}"))),
                            shed: None,
                            service_us: 0,
                            latency_us: 0,
                        }
                    }
                };
                // Stamp the merge boundary with the shard lock held, then
                // measure end-to-end latency *after* it: the session's
                // stage sum (submit → record) can never exceed its
                // reported latency — the cross-check the attribution
                // tests assert. The lock is uncontended by construction
                // (one worker per shard), so the point moves by nanoseconds.
                let mut shard_guard = shards[worker].lock().unwrap();
                if let Some(r) = &rec {
                    r.record(worker, EventKind::Record, Some(session));
                }
                result.latency_us = scheduled.elapsed().as_micros() as u64;
                shard_guard.record(result);
            }),
        );
    }

    /// Blocks until all submitted sessions finish.
    pub fn drain(&self) {
        self.executor.drain();
    }

    /// Current executor counters, with `panicked` including panics the
    /// server contained inside session jobs.
    pub fn stats(&self) -> ExecutorStats {
        let mut stats = self.executor.stats();
        stats.panicked += self.panicked.load(Ordering::Relaxed);
        stats
    }

    /// Drains, stops the workers, merges the per-worker result shards
    /// (once), and returns the per-session results sorted by session id
    /// plus the pre-merged per-mode metrics.
    pub fn finish(self) -> ServeOutcome {
        let workers = self.executor.workers();
        let mut stats = self.executor.shutdown();
        stats.panicked += self.panicked.load(Ordering::Relaxed);
        // Stop the sampler after the drain so its final sample captures
        // the fully drained end state.
        let samples = self.sampler.map(Sampler::stop);
        let telemetry = self.recorder.map(|rec| {
            let duration_us = rec.now_us();
            let trace = ServerTrace::new(workers, duration_us, rec.drain());
            let stages = trace.session_stages();
            Telemetry {
                timeline: Timeline::new(self.telemetry_tick_us, samples.unwrap_or_default()),
                stages,
                trace,
            }
        });
        let shards = Arc::try_unwrap(self.shards).expect("workers stopped");
        let mut results = self.admission_shed.into_inner().unwrap();
        let mut merged: Vec<((CheckMode, Engine), MetricsSnapshot)> = Vec::new();
        for shard in shards {
            let shard = shard.into_inner().unwrap();
            results.extend(shard.results);
            for (key, snap) in shard.metrics {
                match merged.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, agg)) => agg.merge(&snap),
                    None => merged.push((key, snap)),
                }
            }
        }
        results.sort_by_key(|r| r.spec.session);

        // Collapse the per-(mode, engine) accumulators to per-mode, in
        // first-appearance (session-id) order, so the report is
        // byte-identical at any worker count.
        let mut mode_metrics: Vec<(CheckMode, MetricsSnapshot)> = Vec::new();
        for r in results.iter().filter(|r| r.shed.is_none()) {
            if !mode_metrics.iter().any(|(m, _)| *m == r.spec.mode) {
                mode_metrics.push((
                    r.spec.mode,
                    MetricsSnapshot {
                        mode: r.spec.mode,
                        ..Default::default()
                    },
                ));
            }
        }
        for ((mode, _), snap) in &merged {
            let slot = mode_metrics
                .iter_mut()
                .find(|(m, _)| m == mode)
                .expect("accumulated mode appears in results");
            slot.1.merge(snap);
        }

        let shed = ShedStats {
            admission: self.shed_admission.load(Ordering::Relaxed),
            queue: self.shed_queue.load(Ordering::Relaxed),
        };
        ServeOutcome {
            results,
            stats,
            mode_metrics,
            shed,
            telemetry,
        }
    }
}

/// Builds the placeholder result for a shed session: empty virtual
/// outcome, latency measured to the shed decision.
fn shed_result(
    entry: &MixEntry,
    session: u64,
    scheduled: Instant,
    stage: ShedStage,
) -> SessionResult {
    SessionResult {
        spec: SessionSpec {
            session,
            program: Arc::clone(&entry.program),
            variant: entry.variant,
            mode: entry.mode,
            engine: entry.engine,
        },
        cycles: 0,
        metrics: MetricsSnapshot {
            mode: entry.mode,
            ..Default::default()
        },
        output: Vec::new(),
        error: None,
        shed: Some(stage),
        service_us: 0,
        latency_us: scheduled.elapsed().as_micros() as u64,
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

/// Runs `rounds` complete mix rounds as fast as the workers allow (no
/// pacing) and returns the results — the `rtjc serve` entry point and
/// the saturation benchmark.
pub fn run_batch(cfg: &ServeConfig, rounds: u64) -> Result<ServeOutcome, ServeError> {
    let server = Server::start(cfg)?;
    let sessions = rounds * server.mix_len() as u64;
    for session in 0..sessions {
        server.submit(session, Instant::now());
    }
    Ok(server.finish())
}
