//! A sharded work-stealing executor over OS threads, with a lock-light
//! hot path.
//!
//! Jobs are distributed round-robin across per-worker shards (a
//! `Mutex<VecDeque>` each). A worker pops from the **front** of its own
//! shard and, when that is empty, steals from the **back** of a
//! sibling's shard — the classic deque discipline that keeps owners on
//! cache-warm recent work and sends thieves to the cold end.
//!
//! Coordination is deliberately split by temperature:
//!
//! * **Hot path** — all run-level accounting (`submitted`, `completed`,
//!   `queued`, `in_flight`, `peak_in_flight`, `stolen`) lives in atomics;
//!   `submit` touches only the target shard's mutex, so two submitters
//!   (or a submitter and seven workers) never serialize on a global
//!   lock. `peak_in_flight` is exact: the in-flight counter is
//!   incremented *before* the job is published and the peak is
//!   maintained with an atomic max at that instant.
//! * **Cold path** — an empty-handed worker parks on the `work` condvar,
//!   and `drain` / bounded-queue `submit` back-off park on `drained`;
//!   both share the one `idle` mutex that is only ever touched when the
//!   pool empties out, never per job.
//!
//! Worker parking is a Dekker-style handshake, not a polling tick: a
//! worker advertises itself in `idlers` *before* re-checking `queued`
//! under the idle lock, and a submitter publishes to `queued` *before*
//! reading `idlers` — both with `SeqCst`, so in every interleaving at
//! least one side sees the other. Either the worker observes the new job
//! and skips the sleep, or the submitter observes the parked worker and
//! signals `work` under the lock. Idle workers therefore cost zero CPU
//! until work (or shutdown) actually arrives, instead of waking every
//! millisecond to rescan; under the open-loop harness the 1 ms tick this
//! replaces was the pool's dominant idle-state wakeup source.
//!
//! Jobs receive the **executing worker's index** — that is what lets the
//! server keep per-worker result shards (sharing serialized by
//! construction, not by a global results lock). A job that panics is
//! contained: the unwind is caught, the `panicked` counter increments,
//! and completion accounting proceeds, so one poisoned session can never
//! wedge a batch.
//!
//! Backpressure: a bounded executor (`queue_capacity > 0`) blocks
//! [`Executor::submit`] while `queued >= capacity`, so an open-loop
//! driver that outruns the service rate is throttled at the submission
//! edge rather than growing the queue without bound. `0` means
//! unbounded, the right setting for measuring backlog under overload.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use crate::telemetry::{EventKind, FlightRecorder, WorkerSample};

/// A unit of work: one session execution. The argument is the index of
/// the worker that runs the job (the shard-ownership token for
/// per-worker result aggregation) — not necessarily the shard the job
/// was submitted to, when it was stolen.
pub type Job = Box<dyn FnOnce(usize) + Send + 'static>;

/// One worker's queue: its own mutex, so submissions to different
/// shards never contend.
struct Shard {
    queue: Mutex<VecDeque<Job>>,
    /// Jobs this shard's owning worker has executed (telemetry gauge;
    /// only the owner writes it).
    completed: AtomicU64,
}

struct Inner {
    shards: Vec<Shard>,
    /// Total jobs ever submitted (also the round-robin ticket counter).
    submitted: AtomicU64,
    /// Total jobs fully executed (including contained panics).
    completed: AtomicU64,
    /// Jobs a worker took from a sibling's shard.
    stolen: AtomicU64,
    /// Jobs whose unwind was caught and contained.
    panicked: AtomicU64,
    /// Jobs pushed to a shard but not yet claimed by a worker.
    queued: AtomicUsize,
    /// `submitted - completed`, maintained directly so the peak is exact.
    in_flight: AtomicU64,
    /// High-water mark of `in_flight`.
    peak_in_flight: AtomicU64,
    /// Set once; workers exit when the queue is empty.
    shutdown: AtomicBool,
    /// Workers currently parked (or committing to park) on `work`.
    /// Advertised *before* the final `queued` re-check — the submitter
    /// side of the Dekker handshake (see the module docs).
    idlers: AtomicUsize,
    /// Cold-path parking for idle workers, `drain`, and bounded-queue
    /// submitters.
    idle: Mutex<()>,
    /// Signalled (under `idle`) when work arrives for a parked worker,
    /// and at shutdown.
    work: Condvar,
    /// Signalled when the pool fully drains or queue space frees up.
    drained: Condvar,
    capacity: usize,
    /// Flight recorder for park/unpark events. `None` (the default)
    /// compiles the telemetry hooks down to one untaken branch per
    /// park transition — the hot claim/execute path is untouched.
    recorder: Option<Arc<FlightRecorder>>,
}

impl Inner {
    fn stats(&self) -> ExecutorStats {
        ExecutorStats {
            workers: self.shards.len(),
            submitted: self.submitted.load(Ordering::SeqCst),
            completed: self.completed.load(Ordering::SeqCst),
            stolen: self.stolen.load(Ordering::SeqCst),
            peak_in_flight: self.peak_in_flight.load(Ordering::SeqCst),
            panicked: self.panicked.load(Ordering::SeqCst),
        }
    }
}

/// How long `drain` and a backpressured bounded-queue submitter sleep
/// between re-checks. Both are cold-path waits whose wakeups are also
/// signalled; the tick only bounds the delay of a lost `drained` signal
/// (worker parking itself is handshake-based and never polls).
const IDLE_TICK: Duration = Duration::from_millis(1);

/// Point-in-time executor counters, reported in the `rtj-load/v1`
/// document.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Worker-thread (and shard) count.
    pub workers: usize,
    /// Total jobs submitted.
    pub submitted: u64,
    /// Total jobs completed.
    pub completed: u64,
    /// Jobs executed by a worker other than the one whose shard received
    /// them.
    pub stolen: u64,
    /// High-water mark of in-flight jobs (queued + executing).
    pub peak_in_flight: u64,
    /// Jobs that panicked; the unwind was caught and the job counted as
    /// completed.
    pub panicked: u64,
}

/// The sharded work-stealing thread pool. See the module docs.
pub struct Executor {
    inner: Arc<Inner>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Executor {
    /// Starts `workers` threads (0 selects the machine's available
    /// parallelism) with one shard each and the given queue capacity
    /// (0 = unbounded).
    pub fn new(workers: usize, queue_capacity: usize) -> Executor {
        Executor::with_recorder(workers, queue_capacity, None)
    }

    /// Like [`Executor::new`], but wires a flight recorder into the
    /// workers so park/unpark transitions are traced. The recorder must
    /// have (at least) one lane per worker.
    pub fn with_recorder(
        workers: usize,
        queue_capacity: usize,
        recorder: Option<Arc<FlightRecorder>>,
    ) -> Executor {
        let workers = resolve_workers(workers);
        if let Some(rec) = &recorder {
            assert!(rec.workers() >= workers, "recorder lane per worker");
        }
        let inner = Arc::new(Inner {
            shards: (0..workers)
                .map(|_| Shard {
                    queue: Mutex::new(VecDeque::new()),
                    completed: AtomicU64::new(0),
                })
                .collect(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            queued: AtomicUsize::new(0),
            in_flight: AtomicU64::new(0),
            peak_in_flight: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            idlers: AtomicUsize::new(0),
            idle: Mutex::new(()),
            work: Condvar::new(),
            drained: Condvar::new(),
            capacity: queue_capacity,
            recorder,
        });
        let handles = (0..workers)
            .map(|id| {
                let inner = Arc::clone(&inner);
                thread::Builder::new()
                    .name(format!("rtj-worker-{id}"))
                    .spawn(move || worker_loop(id, &inner))
                    .expect("spawn worker")
            })
            .collect();
        Executor {
            inner,
            workers: handles,
        }
    }

    /// Number of worker threads (== number of shards).
    pub fn workers(&self) -> usize {
        self.inner.shards.len()
    }

    /// Submits a job, blocking while the queue is at capacity. The shard
    /// is chosen round-robin by submission index, so load is spread even
    /// when workers are busy.
    pub fn submit(&self, job: Job) {
        let ticket = self.inner.submitted.load(Ordering::Relaxed) as usize;
        self.submit_to(ticket % self.inner.shards.len(), job);
    }

    /// Submits a job **pinned** to one shard, bypassing round-robin
    /// spreading. The executing worker may still differ (stealing);
    /// pinning only chooses where the job waits. Used to construct
    /// deliberately unbalanced load (tests, affinity experiments).
    pub fn submit_to(&self, shard: usize, job: Job) {
        let inner = &*self.inner;
        assert!(shard < inner.shards.len(), "shard {shard} out of range");
        if inner.capacity > 0 {
            // Bounded queue: park on the cold-path condvar until a claim
            // frees space. Timed wait so a lost wakeup only delays.
            let mut guard = inner.idle.lock().unwrap();
            while inner.queued.load(Ordering::SeqCst) >= inner.capacity
                && !inner.shutdown.load(Ordering::SeqCst)
            {
                let (g, _) = inner.drained.wait_timeout(guard, IDLE_TICK).unwrap();
                guard = g;
            }
        }
        assert!(
            !inner.shutdown.load(Ordering::SeqCst),
            "submit after shutdown"
        );
        // Count the job in-flight *before* publishing it so the peak can
        // never under-read: the atomic max happens at the increment.
        let now_in_flight = inner.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        inner
            .peak_in_flight
            .fetch_max(now_in_flight, Ordering::SeqCst);
        inner.submitted.fetch_add(1, Ordering::SeqCst);
        inner.queued.fetch_add(1, Ordering::SeqCst);
        {
            let mut queue = inner.shards[shard].queue.lock().unwrap();
            queue.push_back(job);
        }
        // Dekker handshake, submitter side: `queued` is published above,
        // so a worker that re-checks it after this point skips parking;
        // a worker that advertised in `idlers` before this read is seen
        // here and signalled under the lock (which it holds until it is
        // actually waiting — the signal cannot slip into the gap).
        if inner.idlers.load(Ordering::SeqCst) > 0 {
            let _guard = inner.idle.lock().unwrap();
            inner.work.notify_one();
        }
    }

    /// Blocks until every submitted job has finished executing.
    pub fn drain(&self) {
        let inner = &*self.inner;
        let mut guard = inner.idle.lock().unwrap();
        while inner.in_flight.load(Ordering::SeqCst) > 0 {
            let (g, _) = inner.drained.wait_timeout(guard, IDLE_TICK).unwrap();
            guard = g;
        }
    }

    /// Current counters.
    pub fn stats(&self) -> ExecutorStats {
        self.inner.stats()
    }

    /// A handle the telemetry sampler can poll from its own thread while
    /// the pool runs.
    pub fn probe(&self) -> ExecutorProbe {
        ExecutorProbe {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Drains outstanding work, stops the workers, and returns the final
    /// counters.
    pub fn shutdown(mut self) -> ExecutorStats {
        self.drain();
        self.stop_workers();
        self.stats()
    }

    fn stop_workers(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        {
            // Take the idle lock so the store above cannot fall between
            // a worker's shutdown re-check and its wait.
            let _guard = self.inner.idle.lock().unwrap();
            self.inner.work.notify_all();
            self.inner.drained.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Resolves a requested worker count (0 = the machine's available
/// parallelism) to the actual thread count — shared with the server so
/// the flight recorder can size its lanes before the pool exists.
pub(crate) fn resolve_workers(workers: usize) -> usize {
    if workers == 0 {
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        workers
    }
}

/// A sampling handle onto a live executor: reads the gauge counters
/// without participating in the pool's lifecycle (holding one does not
/// keep workers alive or delay shutdown accounting).
pub struct ExecutorProbe {
    inner: Arc<Inner>,
}

/// One probe reading, consumed by the telemetry sampler.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProbeSample {
    /// Jobs submitted but not finished (queued + executing).
    pub in_flight: u64,
    /// Jobs queued but not yet claimed.
    pub queued: u64,
    /// Jobs fully executed.
    pub completed: u64,
    /// Per-worker completed counts and instantaneous queue depths.
    pub workers: Vec<WorkerSample>,
}

impl ExecutorProbe {
    /// Current counters (same snapshot as [`Executor::stats`]).
    pub fn stats(&self) -> ExecutorStats {
        self.inner.stats()
    }

    /// Reads the run gauges plus the per-worker breakdown. Queue depths
    /// take each shard's lock briefly; the sampler tick (≥ 100 µs)
    /// bounds how often.
    pub fn sample(&self) -> ProbeSample {
        let inner = &*self.inner;
        ProbeSample {
            in_flight: inner.in_flight.load(Ordering::SeqCst),
            queued: inner.queued.load(Ordering::SeqCst) as u64,
            completed: inner.completed.load(Ordering::SeqCst),
            workers: inner
                .shards
                .iter()
                .map(|shard| WorkerSample {
                    completed: shard.completed.load(Ordering::SeqCst),
                    queued: shard.queue.lock().unwrap().len() as u64,
                })
                .collect(),
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.stop_workers();
        }
    }
}

fn worker_loop(id: usize, inner: &Inner) {
    let shards = inner.shards.len();
    loop {
        // Own shard first (front: cache-warm recent work), then steal
        // from siblings' backs. The own-shard guard is a `let`-statement
        // temporary, dropped before the steal scan — holding it while
        // locking a victim's queue would let empty-handed workers form a
        // hold-and-wait cycle.
        let mut claimed = inner.shards[id].queue.lock().unwrap().pop_front();
        let mut stole = false;
        if claimed.is_none() {
            for off in 1..shards {
                let victim = &inner.shards[(id + off) % shards];
                if let Some(job) = victim.queue.lock().unwrap().pop_back() {
                    claimed = Some(job);
                    stole = true;
                    break;
                }
            }
        }

        let job = match claimed {
            Some(job) => job,
            None => {
                if inner.shutdown.load(Ordering::SeqCst) && inner.queued.load(Ordering::SeqCst) == 0
                {
                    return;
                }
                // Dekker handshake, worker side: advertise in `idlers`,
                // then re-check `queued` while holding the idle lock.
                // A submitter publishes `queued` before reading `idlers`
                // (both `SeqCst`), so either this re-check sees its job
                // or it sees this worker and signals `work` — the signal
                // cannot be lost because the lock is held from here
                // until the wait actually parks.
                let guard = inner.idle.lock().unwrap();
                inner.idlers.fetch_add(1, Ordering::SeqCst);
                if inner.queued.load(Ordering::SeqCst) == 0
                    && !inner.shutdown.load(Ordering::SeqCst)
                {
                    if let Some(rec) = &inner.recorder {
                        rec.record(id, EventKind::Park, None);
                    }
                    let _guard = inner.work.wait(guard).unwrap();
                    if let Some(rec) = &inner.recorder {
                        rec.record(id, EventKind::Unpark, None);
                    }
                }
                inner.idlers.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
        };

        inner.queued.fetch_sub(1, Ordering::SeqCst);
        if stole {
            inner.stolen.fetch_add(1, Ordering::SeqCst);
        }
        if inner.capacity > 0 {
            // A claim frees queue space for a blocked submitter.
            inner.drained.notify_all();
        }

        // Panic containment: a session that unwinds is recorded and
        // counted; the worker, its shard, and the batch survive.
        if catch_unwind(AssertUnwindSafe(|| job(id))).is_err() {
            inner.panicked.fetch_add(1, Ordering::SeqCst);
        }

        inner.completed.fetch_add(1, Ordering::SeqCst);
        inner.shards[id].completed.fetch_add(1, Ordering::SeqCst);
        let remaining = inner.in_flight.fetch_sub(1, Ordering::SeqCst) - 1;
        if remaining == 0 {
            // Cold path: only the last job of a lull pays for the lock.
            let _guard = inner.idle.lock().unwrap();
            inner.drained.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn executes_every_job_once() {
        let pool = Executor::new(4, 0);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..1000 {
            let hits = Arc::clone(&hits);
            pool.submit(Box::new(move |_worker| {
                hits.fetch_add(1, Ordering::Relaxed);
            }));
        }
        let stats = pool.shutdown();
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
        assert_eq!(stats.submitted, 1000);
        assert_eq!(stats.completed, 1000);
        assert_eq!(stats.panicked, 0);
    }

    #[test]
    fn bounded_queue_applies_backpressure() {
        let pool = Executor::new(2, 8);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..200 {
            let hits = Arc::clone(&hits);
            pool.submit(Box::new(move |_worker| {
                hits.fetch_add(1, Ordering::Relaxed);
            }));
        }
        let stats = pool.shutdown();
        assert_eq!(hits.load(Ordering::Relaxed), 200);
        // In-flight never exceeds capacity + workers-in-execution.
        assert!(stats.peak_in_flight <= 8 + 2);
    }

    #[test]
    fn drain_then_reuse() {
        let pool = Executor::new(3, 0);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..50 {
            let hits = Arc::clone(&hits);
            pool.submit(Box::new(move |_worker| {
                hits.fetch_add(1, Ordering::Relaxed);
            }));
        }
        pool.drain();
        assert_eq!(hits.load(Ordering::Relaxed), 50);
        for _ in 0..50 {
            let hits = Arc::clone(&hits);
            pool.submit(Box::new(move |_worker| {
                hits.fetch_add(1, Ordering::Relaxed);
            }));
        }
        let stats = pool.shutdown();
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!(stats.submitted, 100);
    }

    #[test]
    fn pinned_submissions_force_stealing() {
        // Everything lands in shard 0; workers 1..3 have empty shards
        // and can only make progress by stealing. Each pinned submission
        // still wakes a parked worker (the handshake signals any idler,
        // not just the shard's owner), and the jobs sleep long enough
        // that one worker cannot drain the queue before the woken
        // thieves scan it.
        let pool = Executor::new(4, 0);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..64 {
            let hits = Arc::clone(&hits);
            pool.submit_to(
                0,
                Box::new(move |_worker| {
                    std::thread::sleep(Duration::from_millis(2));
                    hits.fetch_add(1, Ordering::Relaxed);
                }),
            );
        }
        let stats = pool.shutdown();
        assert_eq!(hits.load(Ordering::Relaxed), 64);
        assert_eq!(stats.completed, 64);
        assert!(stats.stolen > 0, "uneven pinning must force steals");
    }

    #[test]
    fn peak_in_flight_matches_reference_simulation() {
        // Deterministic schedule: first occupy every worker with a gate
        // job, then queue extra jobs while all workers are blocked — no
        // completion can interleave with the submissions, so the true
        // peak is known exactly and a single-threaded replay of the
        // same event order must agree with the atomic counter.
        use std::sync::atomic::AtomicBool;
        const WORKERS: usize = 3;
        const EXTRA: usize = 17;

        let pool = Executor::new(WORKERS, 0);
        let gate = Arc::new(AtomicBool::new(false));
        let started = Arc::new(AtomicU64::new(0));
        for shard in 0..WORKERS {
            let gate = Arc::clone(&gate);
            let started = Arc::clone(&started);
            pool.submit_to(
                shard,
                Box::new(move |_worker| {
                    started.fetch_add(1, Ordering::SeqCst);
                    while !gate.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_micros(50));
                    }
                }),
            );
        }
        while started.load(Ordering::SeqCst) < WORKERS as u64 {
            std::thread::sleep(Duration::from_micros(50));
        }
        for i in 0..EXTRA {
            pool.submit_to(i % WORKERS, Box::new(|_worker| {}));
        }
        gate.store(true, Ordering::SeqCst);
        let stats = pool.shutdown();

        // Reference replay: (WORKERS + EXTRA) submissions before the
        // first completion, then all completions.
        let mut in_flight = 0u64;
        let mut peak = 0u64;
        for _ in 0..WORKERS + EXTRA {
            in_flight += 1;
            peak = peak.max(in_flight);
        }
        assert_eq!(stats.peak_in_flight, peak);
        assert_eq!(stats.completed, (WORKERS + EXTRA) as u64);
    }

    #[test]
    fn panicking_job_is_contained_and_counted() {
        let pool = Executor::new(2, 0);
        let hits = Arc::new(AtomicU64::new(0));
        for i in 0..20 {
            let hits = Arc::clone(&hits);
            pool.submit(Box::new(move |_worker| {
                if i == 7 {
                    panic!("injected");
                }
                hits.fetch_add(1, Ordering::Relaxed);
            }));
        }
        let stats = pool.shutdown();
        assert_eq!(hits.load(Ordering::Relaxed), 19);
        assert_eq!(stats.completed, 20, "the panicked job still completes");
        assert_eq!(stats.panicked, 1);
    }

    #[test]
    fn worker_index_is_in_range() {
        let pool = Executor::new(3, 0);
        let bad = Arc::new(AtomicU64::new(0));
        for _ in 0..300 {
            let bad = Arc::clone(&bad);
            pool.submit(Box::new(move |worker| {
                if worker >= 3 {
                    bad.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        pool.shutdown();
        assert_eq!(bad.load(Ordering::Relaxed), 0);
    }
}
