//! A sharded work-stealing executor over OS threads.
//!
//! Jobs are distributed round-robin across per-worker shards (a
//! `Mutex<VecDeque>` each). A worker pops from the **front** of its own
//! shard and, when that is empty, steals from the **back** of a sibling's
//! shard — the classic deque discipline that keeps owners on cache-warm
//! recent work and sends thieves to the cold end. All coordination uses
//! the standard library only (mutexes and condvars; no atomics-based
//! lock-free deque), which keeps the executor small, auditable, and
//! obviously free of data races: determinism of *session results* is
//! never at stake because every session runs on its own [`rtj_runtime::Runtime`],
//! so the executor only has to be correct, not deterministic, about
//! *placement*.
//!
//! Backpressure: a bounded executor (`queue_capacity > 0`) blocks
//! [`Executor::submit`] while `queued >= capacity`, so an open-loop
//! driver that outruns the service rate is throttled at the submission
//! edge rather than growing the queue without bound. `0` means
//! unbounded, the right setting for measuring backlog under overload.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

/// A unit of work: one session execution.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Counters shared under the control lock.
#[derive(Debug, Default)]
struct Control {
    /// Jobs pushed to a shard but not yet claimed by a worker.
    queued: usize,
    /// Jobs currently executing.
    active: usize,
    /// Set once; workers exit when the queue is empty.
    shutdown: bool,
    /// Total jobs ever submitted.
    submitted: u64,
    /// Total jobs fully executed.
    completed: u64,
    /// Jobs a worker took from a sibling's shard.
    stolen: u64,
    /// High-water mark of `submitted - completed` (queued + active).
    peak_in_flight: u64,
}

struct Inner {
    shards: Vec<Mutex<VecDeque<Job>>>,
    control: Mutex<Control>,
    /// Signalled when work arrives or shutdown is requested.
    work: Condvar,
    /// Signalled when a job is claimed (space frees up) or the executor
    /// fully drains.
    drained: Condvar,
    capacity: usize,
}

/// Point-in-time executor counters, reported in the `rtj-load/v1`
/// document.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Worker-thread (and shard) count.
    pub workers: usize,
    /// Total jobs submitted.
    pub submitted: u64,
    /// Total jobs completed.
    pub completed: u64,
    /// Jobs executed by a worker other than the one whose shard received
    /// them.
    pub stolen: u64,
    /// High-water mark of in-flight jobs (queued + executing).
    pub peak_in_flight: u64,
}

/// The sharded work-stealing thread pool. See the module docs.
pub struct Executor {
    inner: Arc<Inner>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Executor {
    /// Starts `workers` threads (0 selects the machine's available
    /// parallelism) with one shard each and the given queue capacity
    /// (0 = unbounded).
    pub fn new(workers: usize, queue_capacity: usize) -> Executor {
        let workers = if workers == 0 {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            workers
        };
        let inner = Arc::new(Inner {
            shards: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            control: Mutex::new(Control::default()),
            work: Condvar::new(),
            drained: Condvar::new(),
            capacity: queue_capacity,
        });
        let handles = (0..workers)
            .map(|id| {
                let inner = Arc::clone(&inner);
                thread::Builder::new()
                    .name(format!("rtj-worker-{id}"))
                    .spawn(move || worker_loop(id, &inner))
                    .expect("spawn worker")
            })
            .collect();
        Executor {
            inner,
            workers: handles,
        }
    }

    /// Number of worker threads (== number of shards).
    pub fn workers(&self) -> usize {
        self.inner.shards.len()
    }

    /// Submits a job, blocking while the queue is at capacity. The shard
    /// is chosen round-robin by submission index, so load is spread even
    /// when workers are busy.
    pub fn submit(&self, job: Job) {
        let inner = &*self.inner;
        let shard_index;
        {
            let mut ctl = inner.control.lock().unwrap();
            if inner.capacity > 0 {
                while ctl.queued >= inner.capacity && !ctl.shutdown {
                    ctl = inner.drained.wait(ctl).unwrap();
                }
            }
            assert!(!ctl.shutdown, "submit after shutdown");
            shard_index = (ctl.submitted as usize) % inner.shards.len();
            ctl.submitted += 1;
        }
        inner.shards[shard_index].lock().unwrap().push_back(job);
        {
            let mut ctl = inner.control.lock().unwrap();
            ctl.queued += 1;
            let in_flight = ctl.submitted - ctl.completed;
            ctl.peak_in_flight = ctl.peak_in_flight.max(in_flight);
        }
        inner.work.notify_one();
    }

    /// Blocks until every submitted job has finished executing.
    pub fn drain(&self) {
        let inner = &*self.inner;
        let mut ctl = inner.control.lock().unwrap();
        while ctl.queued > 0 || ctl.active > 0 {
            ctl = inner.drained.wait(ctl).unwrap();
        }
    }

    /// Current counters.
    pub fn stats(&self) -> ExecutorStats {
        let ctl = self.inner.control.lock().unwrap();
        ExecutorStats {
            workers: self.inner.shards.len(),
            submitted: ctl.submitted,
            completed: ctl.completed,
            stolen: ctl.stolen,
            peak_in_flight: ctl.peak_in_flight,
        }
    }

    /// Drains outstanding work, stops the workers, and returns the final
    /// counters.
    pub fn shutdown(mut self) -> ExecutorStats {
        self.drain();
        {
            let mut ctl = self.inner.control.lock().unwrap();
            ctl.shutdown = true;
        }
        self.inner.work.notify_all();
        self.inner.drained.notify_all();
        for handle in self.workers.drain(..) {
            handle.join().expect("worker panicked");
        }
        self.stats()
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        {
            let mut ctl = self.inner.control.lock().unwrap();
            ctl.shutdown = true;
        }
        self.inner.work.notify_all();
        self.inner.drained.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(id: usize, inner: &Inner) {
    loop {
        // Reserve one queued job (or exit) under the control lock.
        let mut stole = false;
        {
            let mut ctl = inner.control.lock().unwrap();
            loop {
                if ctl.queued > 0 {
                    ctl.queued -= 1;
                    ctl.active += 1;
                    break;
                }
                if ctl.shutdown {
                    return;
                }
                // Timed wait guards against a lost wakeup ever wedging
                // the pool; 10ms is far above any real signalling delay.
                let (next, _) = inner
                    .work
                    .wait_timeout(ctl, Duration::from_millis(10))
                    .unwrap();
                ctl = next;
            }
        }
        if inner.capacity > 0 {
            // A claim frees queue space for a blocked submitter.
            inner.drained.notify_all();
        }

        // The reservation guarantees a job exists in some shard; scan
        // own-front first, then steal from siblings' backs. The scan can
        // transiently miss (jobs land in shards before the queued count
        // rises), so loop until the reserved job is found.
        let job = loop {
            let shards = inner.shards.len();
            let mut found = None;
            for off in 0..shards {
                let idx = (id + off) % shards;
                let mut shard = inner.shards[idx].lock().unwrap();
                let popped = if off == 0 {
                    shard.pop_front()
                } else {
                    shard.pop_back()
                };
                if let Some(job) = popped {
                    stole = off != 0;
                    found = Some(job);
                    break;
                }
            }
            match found {
                Some(job) => break job,
                None => thread::yield_now(),
            }
        };

        job();

        let mut ctl = inner.control.lock().unwrap();
        ctl.active -= 1;
        ctl.completed += 1;
        if stole {
            ctl.stolen += 1;
        }
        if ctl.queued == 0 && ctl.active == 0 {
            inner.drained.notify_all();
        }
        drop(ctl);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn executes_every_job_once() {
        let pool = Executor::new(4, 0);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..1000 {
            let hits = Arc::clone(&hits);
            pool.submit(Box::new(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            }));
        }
        let stats = pool.shutdown();
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
        assert_eq!(stats.submitted, 1000);
        assert_eq!(stats.completed, 1000);
    }

    #[test]
    fn bounded_queue_applies_backpressure() {
        let pool = Executor::new(2, 8);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..200 {
            let hits = Arc::clone(&hits);
            pool.submit(Box::new(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            }));
        }
        let stats = pool.shutdown();
        assert_eq!(hits.load(Ordering::Relaxed), 200);
        // In-flight never exceeds capacity + workers-in-execution.
        assert!(stats.peak_in_flight <= 8 + 2);
    }

    #[test]
    fn drain_then_reuse() {
        let pool = Executor::new(3, 0);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..50 {
            let hits = Arc::clone(&hits);
            pool.submit(Box::new(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            }));
        }
        pool.drain();
        assert_eq!(hits.load(Ordering::Relaxed), 50);
        for _ in 0..50 {
            let hits = Arc::clone(&hits);
            pool.submit(Box::new(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            }));
        }
        let stats = pool.shutdown();
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!(stats.submitted, 100);
    }
}
