//! Property tests over [`MetricsSnapshot::merge`].
//!
//! Reports aggregated from many runs (`rtjc report a.json b.json …`,
//! the Figure-12 aggregate) must not depend on the order the documents
//! are merged in, so `merge` has to be associative and commutative —
//! for snapshots sharing a [`CheckMode`]. (The mode field itself keeps
//! `self`'s value, so mixing modes is order-sensitive by design; every
//! aggregation in the repo merges runs of one mode.)

use proptest::prelude::*;
use rtj_runtime::{CheckCounters, CheckMode, CheckerMetrics, Histogram, MetricsSnapshot};

fn counters_strategy() -> impl Strategy<Value = CheckCounters> {
    (
        0u64..1_000,
        0u64..1_000,
        0u64..1_000,
        0u64..100,
        0u64..100_000,
        prop::collection::vec((0usize..65, 0u64..50), 0..6),
    )
        .prop_map(|(performed, charged, elided, failed, cycles, hist)| {
            let mut cost_hist = Histogram::default();
            for (bucket, count) in hist {
                cost_hist.buckets[bucket] += count;
            }
            CheckCounters {
                performed,
                charged,
                elided,
                failed,
                cycles,
                cost_hist,
            }
        })
}

fn checker_strategy() -> impl Strategy<Value = Option<CheckerMetrics>> {
    (any::<bool>(), 0u64..50, 0u64..200, 0u64..5_000, 1u64..16).prop_map(
        |(present, classes_checked, methods_checked, cache_hits, threads_used)| {
            present.then_some(CheckerMetrics {
                classes_checked,
                methods_checked,
                cache_hits,
                cache_misses: cache_hits / 2,
                threads_used,
            })
        },
    )
}

/// A random snapshot in the given mode. All snapshots of a case share
/// one mode, matching how the repo aggregates runs.
fn snapshot_strategy(mode: CheckMode) -> impl Strategy<Value = MetricsSnapshot> {
    (
        prop::collection::vec(counters_strategy(), 4..5),
        prop::collection::vec(0u64..100_000, 12..13),
        checker_strategy(),
    )
        .prop_map(move |(checks, nums, checker)| MetricsSnapshot {
            mode,
            total_cycles: nums[0],
            checks: checks.try_into().expect("exactly four check kinds"),
            objects_allocated: nums[1],
            bytes_allocated: nums[2],
            alloc_cycles: nums[3],
            regions_created: nums[4],
            regions_flushed: nums[5],
            regions_deleted: nums[6],
            gc_collections: nums[7],
            gc_pause_cycles: nums[8],
            threads_spawned: nums[9],
            rt_lock_wait_cycles: nums[10],
            rt_max_lock_wait: nums[11],
            checker,
        })
}

fn mode_strategy() -> impl Strategy<Value = CheckMode> {
    prop_oneof![
        Just(CheckMode::Static),
        Just(CheckMode::Dynamic),
        Just(CheckMode::Audit),
    ]
}

fn merged(a: &MetricsSnapshot, b: &MetricsSnapshot) -> MetricsSnapshot {
    let mut m = a.clone();
    m.merge(b);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_is_commutative_within_a_mode(
        (a, b) in mode_strategy().prop_flat_map(|m| (snapshot_strategy(m), snapshot_strategy(m)))
    ) {
        let ab = merged(&a, &b);
        let ba = merged(&b, &a);
        prop_assert_eq!(&ab, &ba);
        // Identical snapshots must also serialize and report identically.
        prop_assert_eq!(ab.render(), ba.render());
        prop_assert_eq!(ab.render_report(), ba.render_report());
    }

    #[test]
    fn merge_is_associative(
        (a, b, c) in mode_strategy().prop_flat_map(|m| (
            snapshot_strategy(m),
            snapshot_strategy(m),
            snapshot_strategy(m),
        ))
    ) {
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(left.render(), right.render());
    }

    #[test]
    fn merge_with_default_is_identity_on_counters(
        a in snapshot_strategy(CheckMode::Dynamic)
    ) {
        // `MetricsSnapshot::default()` is the merge unit for every
        // counter (its `checker` is `None`, so the optional section is
        // untouched too).
        let m = merged(&a, &MetricsSnapshot::default());
        prop_assert_eq!(&m, &a);
    }
}
