//! Property tests over random runtime operation sequences.
//!
//! A single-threaded driver performs random region/allocation/store
//! operations against a `Dynamic`-mode runtime. The RTSJ assignment
//! checks may reject individual stores (that is their job); the invariant
//! is that **as long as every store went through the checks, no live
//! object ever references a dead object** — the runtime counterpart of
//! the paper's memory-safety property R3.

use proptest::prelude::*;
use rtj_runtime::{
    CheckMode, CostModel, ObjId, RegionId, RegionSpec, RtError, Runtime, RuntimeOwner, Value,
};

#[derive(Debug, Clone)]
enum Op {
    /// Create a nested local region.
    Push,
    /// Exit the innermost created region (if any).
    Pop,
    /// Allocate an object in a region chosen by index.
    Alloc { region_choice: usize, fields: usize },
    /// Store object `src` into field 0 of object `dst` (by index).
    Store { dst: usize, src: usize },
    /// Clear field 0 of an object.
    Clear { dst: usize },
    /// Read field 0 of a live object.
    Load { obj: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => Just(Op::Push),
        2 => Just(Op::Pop),
        4 => (any::<prop::sample::Index>(), 0usize..4).prop_map(|(i, fields)| Op::Alloc {
            region_choice: i.index(64),
            fields: fields + 1,
        }),
        4 => (any::<prop::sample::Index>(), any::<prop::sample::Index>()).prop_map(|(d, s)| {
            Op::Store {
                dst: d.index(64),
                src: s.index(64),
            }
        }),
        1 => any::<prop::sample::Index>().prop_map(|d| Op::Clear { dst: d.index(64) }),
        2 => any::<prop::sample::Index>().prop_map(|o| Op::Load { obj: o.index(64) }),
    ]
}

struct Driver {
    rt: Runtime,
    /// Stack of created local regions.
    regions: Vec<RegionId>,
    /// Every object ever allocated.
    objects: Vec<ObjId>,
    stores_accepted: u32,
    stores_rejected: u32,
}

impl Driver {
    fn new() -> Driver {
        Driver {
            rt: Runtime::new(CheckMode::Dynamic, CostModel::default()),
            regions: Vec::new(),
            objects: Vec::new(),
            stores_accepted: 0,
            stores_rejected: 0,
        }
    }

    fn regions_in_scope(&self) -> Vec<RegionId> {
        let mut v = vec![self.rt.heap(), self.rt.immortal()];
        v.extend(&self.regions);
        v
    }

    fn apply(&mut self, op: &Op) {
        let t = self.rt.main_thread();
        match op {
            Op::Push => {
                if self.regions.len() < 6 {
                    let r = self
                        .rt
                        .create_region(t, RegionSpec::plain_vt(), false)
                        .expect("create");
                    self.regions.push(r);
                }
            }
            Op::Pop => {
                if let Some(r) = self.regions.pop() {
                    self.rt.exit_created_region(t, r).expect("exit");
                }
            }
            Op::Alloc {
                region_choice,
                fields,
            } => {
                let scope = self.regions_in_scope();
                let r = scope[region_choice % scope.len()];
                let obj = self
                    .rt
                    .alloc(t, RuntimeOwner::Region(r), "Obj", vec![], *fields)
                    .expect("alloc");
                self.objects.push(obj);
            }
            Op::Store { dst, src } => {
                if self.objects.is_empty() {
                    return;
                }
                let d = self.objects[dst % self.objects.len()];
                let s = self.objects[src % self.objects.len()];
                if !self.rt.object(d).alive || !self.rt.object(s).alive {
                    return; // the program cannot even name dead objects
                }
                match self.rt.store_field(t, d, 0, Value::Ref(s)) {
                    Ok(()) => self.stores_accepted += 1,
                    Err(RtError::IllegalAssignment { .. }) => self.stores_rejected += 1,
                    Err(e) => panic!("unexpected store error: {e}"),
                }
            }
            Op::Clear { dst } => {
                if self.objects.is_empty() {
                    return;
                }
                let d = self.objects[dst % self.objects.len()];
                if self.rt.object(d).alive {
                    self.rt
                        .store_field(t, d, 0, Value::Null)
                        .expect("null store");
                }
            }
            Op::Load { obj } => {
                if self.objects.is_empty() {
                    return;
                }
                let o = self.objects[obj % self.objects.len()];
                if self.rt.object(o).alive {
                    self.rt.load_field(t, o, 0).expect("load from live object");
                }
            }
        }
    }

    /// R3 at runtime: live objects only reference live objects.
    fn check_no_dangling(&self) {
        for &o in &self.objects {
            let rec = self.rt.object(o);
            if !rec.alive {
                continue;
            }
            for v in self.rt.object_fields(o) {
                if let Value::Ref(target) = v {
                    assert!(
                        self.rt.object(*target).alive,
                        "live obj#{} references dead obj#{}",
                        o.0,
                        target.0
                    );
                }
            }
        }
    }

    /// Structural sanity: region bookkeeping matches object liveness.
    fn check_region_accounting(&self) {
        for &o in &self.objects {
            let rec = self.rt.object(o);
            if rec.alive {
                assert!(
                    self.rt.region(rec.region).is_alive(),
                    "live object in dead region"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn checked_stores_never_leave_dangling_references(
        ops in prop::collection::vec(op_strategy(), 1..120)
    ) {
        let mut d = Driver::new();
        for op in &ops {
            d.apply(op);
            d.check_no_dangling();
            d.check_region_accounting();
        }
        // Drain remaining regions; the invariant must survive teardown.
        while let Some(r) = d.regions.pop() {
            d.rt.exit_created_region(d.rt.main_thread(), r).unwrap();
            d.check_no_dangling();
        }
    }

    /// The same sequences in Audit mode count the same checks as Dynamic
    /// mode but never advance the clock for them.
    #[test]
    fn audit_mode_counts_but_never_charges(
        ops in prop::collection::vec(op_strategy(), 1..60)
    ) {
        let mut dynamic = Driver::new();
        let mut audit = Driver::new();
        audit.rt = Runtime::new(CheckMode::Audit, CostModel::default());
        for op in &ops {
            dynamic.apply(op);
            audit.apply(op);
        }
        prop_assert_eq!(
            dynamic.rt.stats().store_checks,
            audit.rt.stats().store_checks
        );
        prop_assert_eq!(audit.rt.stats().check_cycles, 0);
        prop_assert_eq!(dynamic.stores_accepted, audit.stores_accepted);
        prop_assert_eq!(dynamic.stores_rejected, audit.stores_rejected);
    }
}

/// Deterministic regression: the classic dangle shape is rejected and the
/// reverse direction accepted.
#[test]
fn classic_dangle_shape() {
    let mut d = Driver::new();
    d.apply(&Op::Push);
    d.apply(&Op::Alloc {
        region_choice: 2,
        fields: 1,
    }); // outer region object
    d.apply(&Op::Push);
    d.apply(&Op::Alloc {
        region_choice: 3,
        fields: 1,
    }); // inner region object
    d.apply(&Op::Store { dst: 0, src: 1 }); // outer.f = inner → rejected
    d.apply(&Op::Store { dst: 1, src: 0 }); // inner.f = outer → accepted
    assert_eq!(d.stores_rejected, 1);
    assert_eq!(d.stores_accepted, 1);
    d.apply(&Op::Pop);
    d.check_no_dangling();
    d.apply(&Op::Pop);
    d.check_no_dangling();
}
