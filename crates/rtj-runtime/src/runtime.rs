//! The runtime facade: the simulated RTSJ platform.
//!
//! A [`Runtime`] owns the region table, the object store, the virtual
//! clock, thread records, the garbage-collector state, and the metrics
//! registry. The interpreter (`rtj-interp`) drives it through a narrow
//! API: allocation, field/portal loads and stores (where the RTSJ
//! dynamic checks live), region creation/entry/exit, thread spawning,
//! and the two-phase subregion enter/exit protocol whose bookkeeping
//! lock models the RTSJ priority-inversion window.
//!
//! Every observable transition is recorded in the per-check-kind
//! [`MetricsRegistry`] and, when a [`TraceSink`] is installed, emitted
//! as a typed [`TraceEvent`]. Dynamic-check
//! *sites* are recorded in every mode — charged in `Dynamic`, run free
//! in `Audit`, counted as *elided* in `Static` — which is what lets the
//! Figure-12 pipeline state how many checks the type system removed.

use crate::checks::{CheckMode, Stats};
use crate::clock::{Clock, CostModel};
use crate::error::RtError;
use crate::events::{TraceEvent, TraceSink};
use crate::metrics::{CheckKind, CheckOutcome, MetricsRegistry, MetricsSnapshot};
use crate::objects::{object_size, FieldStorage, ObjectStore};
use crate::region::{RegionClass, RegionRecord, RegionSpec, RegionState, RegionTable};
use crate::value::{
    AllocPolicy, ObjId, RegionId, Reservation, RuntimeOwner, ThreadClass, ThreadId, Value,
};
use rtj_lang::Symbol;
use std::collections::BTreeSet;

/// Per-thread bookkeeping.
#[derive(Debug, Clone)]
pub struct ThreadRecord {
    /// The thread's id.
    pub id: ThreadId,
    /// Regular or real-time.
    pub class: ThreadClass,
    /// Regions this thread is currently inside (innermost last).
    pub region_stack: Vec<RegionId>,
    /// Whether the thread is still running.
    pub alive: bool,
}

/// Garbage-collector state (stop-the-world, pauses regular threads only).
#[derive(Debug, Clone, Default)]
pub struct GcState {
    /// Bytes of heap allocation since the last collection.
    pub debt: u64,
    /// A collection is requested and will start at the next safepoint.
    pub pending: bool,
    /// While `now < collecting_until`, regular threads are paused.
    pub collecting_until: Option<u64>,
}

/// The simulated RTSJ platform.
#[derive(Debug)]
pub struct Runtime {
    cost: CostModel,
    mode: CheckMode,
    clock: Clock,
    regions: RegionTable,
    objects: ObjectStore,
    threads: Vec<ThreadRecord>,
    gc: GcState,
    gc_enabled: bool,
    metrics: MetricsRegistry,
    sink: Option<Box<dyn TraceSink>>,
    trace: Vec<String>,
    heap: RegionId,
    immortal: RegionId,
    /// Reusable buffer of dead object ids for region exits, so releasing a
    /// region does not allocate.
    dead_buf: Vec<ObjId>,
    /// Tenant tag for multi-session serving (0 = standalone run).
    session: u64,
}

// Shared-state audit: every session in the multi-tenant server owns one
// `Runtime` and may migrate between executor threads, so the runtime must
// own all of its state outright — no `Rc`, `RefCell`, thread-locals, or
// references into shared mutable structures. (The only cross-session
// state in the whole system is the read-only string interner in
// `rtj-lang`, which is internally synchronized.) This compile-time
// assertion is the enforcement point: adding a non-`Send` field breaks
// the build here rather than in a downstream crate.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Runtime>();
};

impl Runtime {
    /// Creates a runtime with the built-in `heap` and `immortal` regions
    /// and a main regular thread whose current region is the heap.
    pub fn new(mode: CheckMode, cost: CostModel) -> Self {
        let mut regions = RegionTable::default();
        let (heap, _) = regions.create(RegionSpec::plain_vt(), RegionClass::Heap, BTreeSet::new());
        let (immortal, _) = regions.create(
            RegionSpec {
                policy: AllocPolicy::Lt {
                    capacity: u64::MAX / 2,
                },
                ..RegionSpec::plain_vt()
            },
            RegionClass::Immortal,
            BTreeSet::new(),
        );
        let main = ThreadRecord {
            id: ThreadId(0),
            class: ThreadClass::Regular,
            region_stack: vec![heap],
            alive: true,
        };
        Runtime {
            cost,
            mode,
            clock: Clock::new(),
            regions,
            objects: ObjectStore::default(),
            threads: vec![main],
            gc: GcState::default(),
            gc_enabled: false,
            metrics: MetricsRegistry::default(),
            sink: None,
            trace: Vec::new(),
            heap,
            immortal,
            dead_buf: Vec::new(),
            session: 0,
        }
    }

    /// Tags this runtime with a session (tenant) identifier. Purely a
    /// label: it never enters the virtual clock, the metrics, or the
    /// trace, so snapshots stay byte-identical across serving topologies.
    pub fn set_session(&mut self, session: u64) {
        self.session = session;
    }

    /// The session (tenant) identifier (0 = standalone run).
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Convenience constructor with the default cost model.
    pub fn with_mode(mode: CheckMode) -> Self {
        Runtime::new(mode, CostModel::default())
    }

    /// The heap region.
    pub fn heap(&self) -> RegionId {
        self.heap
    }

    /// The immortal region.
    pub fn immortal(&self) -> RegionId {
        self.immortal
    }

    /// The main thread.
    pub fn main_thread(&self) -> ThreadId {
        ThreadId(0)
    }

    /// The active check mode.
    pub fn mode(&self) -> CheckMode {
        self.mode
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Current virtual time in cycles.
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// Advances the virtual clock (interpreter step costs, `io`,
    /// `workload`).
    pub fn charge(&mut self, cycles: u64) {
        self.clock.advance(cycles);
    }

    /// The legacy coarse statistics, derived from the metrics registry.
    ///
    /// Returned by value: the registry is the source of truth and this
    /// view is computed on demand. For per-check-kind counters, elision
    /// counts, and cost histograms use [`Runtime::metrics_snapshot`].
    pub fn stats(&self) -> Stats {
        self.metrics.to_stats()
    }

    /// Exports the full per-check-kind metrics, stamped with the run's
    /// mode and current virtual time (`rtj-metrics/v1`).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot(self.mode, self.clock.now())
    }

    /// Installs a trace sink. Subsequent runtime transitions emit
    /// [`TraceEvent`]s into it; threads already alive get a synthetic
    /// `ThreadStart` so every thread in the trace has one.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = Some(sink);
        let now = self.clock.now();
        let alive: Vec<(ThreadId, ThreadClass)> = self
            .threads
            .iter()
            .filter(|r| r.alive)
            .map(|r| (r.id, r.class))
            .collect();
        if let Some(sink) = self.sink.as_mut() {
            for (thread, class) in alive {
                sink.record(&TraceEvent::ThreadStart {
                    at: now,
                    thread,
                    class,
                });
            }
        }
    }

    /// Removes and returns the installed trace sink, if any. Emission
    /// stops (and costs nothing) once the sink is gone.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.sink.take()
    }

    /// Whether a trace sink is currently installed.
    pub fn tracing_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits an event if (and only if) a sink is installed: the closure
    /// runs — and the event is constructed — only on the traced path, so
    /// untraced runs pay one `Option` discriminant test.
    fn emit(&mut self, build: impl FnOnce(u64) -> TraceEvent) {
        if let Some(sink) = self.sink.as_mut() {
            let event = build(self.clock.now());
            sink.record(&event);
        }
    }

    /// Records a dynamic-check site: resolves the mode to an outcome
    /// (`Dynamic` → charged at `cost`, `Audit` → audited free, `Static`
    /// → elided), advances the clock, updates the registry, and emits a
    /// `Check` event. `ok` is `false` when the performed check failed
    /// (callers pass `true` in `Static` mode — an elided check cannot
    /// fail).
    fn note_check(&mut self, t: ThreadId, kind: CheckKind, cost: u64, ok: bool) {
        let (outcome, charged) = match self.mode {
            CheckMode::Dynamic => (CheckOutcome::Charged, cost),
            CheckMode::Audit => (CheckOutcome::Audited, 0),
            CheckMode::Static => (CheckOutcome::Elided, 0),
        };
        if charged > 0 {
            self.clock.advance(charged);
        }
        self.metrics.record_check(kind, outcome, charged);
        if !ok {
            self.metrics.record_check_failure(kind);
        }
        self.emit(|at| TraceEvent::Check {
            at,
            thread: t,
            kind,
            outcome,
            cycles: charged,
            ok,
        });
    }

    /// Trace output produced by `print`.
    pub fn trace(&self) -> &[String] {
        &self.trace
    }

    /// Appends a line to the trace.
    pub fn print(&mut self, line: String) {
        self.clock.advance(self.cost.step);
        self.trace.push(line);
    }

    /// Enables the simulated garbage collector (off by default: the
    /// paper's Figure 12 runs never trigger a collection).
    pub fn enable_gc(&mut self, enabled: bool) {
        self.gc_enabled = enabled;
    }

    // ------------------------------------------------------------- threads

    /// Record for a thread.
    pub fn thread(&self, t: ThreadId) -> &ThreadRecord {
        &self.threads[t.0 as usize]
    }

    /// Number of threads ever created.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Spawns a thread. The child inherits the parent's *shared* regions
    /// (their reference counts are incremented), mirroring the paper's
    /// region-stack semantics.
    pub fn spawn_thread(&mut self, parent: ThreadId, class: ThreadClass) -> ThreadId {
        let inherited: Vec<RegionId> = self.threads[parent.0 as usize]
            .region_stack
            .iter()
            .copied()
            .filter(|r| {
                matches!(
                    self.regions.get(*r).class,
                    RegionClass::Heap
                        | RegionClass::Immortal
                        | RegionClass::Shared
                        | RegionClass::SubInstance { .. }
                )
            })
            .collect();
        for r in &inherited {
            if !matches!(
                self.regions.get(*r).class,
                RegionClass::Heap | RegionClass::Immortal
            ) {
                self.regions.get_mut(*r).thread_count += 1;
            }
        }
        let id = ThreadId(self.threads.len() as u32);
        self.threads.push(ThreadRecord {
            id,
            class,
            region_stack: inherited,
            alive: true,
        });
        self.metrics.record_thread_spawned();
        self.emit(|at| TraceEvent::ThreadStart {
            at,
            thread: id,
            class,
        });
        id
    }

    /// Terminates a thread: its region-stack counts are released
    /// (innermost first), flushing or deleting regions as they empty.
    pub fn finish_thread(&mut self, t: ThreadId) -> Result<(), RtError> {
        let stack: Vec<RegionId> = self.threads[t.0 as usize].region_stack.clone();
        for r in stack.into_iter().rev() {
            if !matches!(
                self.regions.get(r).class,
                RegionClass::Heap | RegionClass::Immortal
            ) {
                self.emit(|at| TraceEvent::RegionExit {
                    at,
                    thread: t,
                    region: r,
                });
                self.release_region(r)?;
            }
        }
        let rec = &mut self.threads[t.0 as usize];
        rec.region_stack.clear();
        rec.alive = false;
        self.emit(|at| TraceEvent::ThreadStop { at, thread: t });
        Ok(())
    }

    /// The innermost region on a thread's stack (its allocation context).
    pub fn current_region(&self, t: ThreadId) -> RegionId {
        *self.threads[t.0 as usize]
            .region_stack
            .last()
            .unwrap_or(&self.heap)
    }

    // ------------------------------------------------------------- regions

    /// Looks up a region record.
    pub fn region(&self, r: RegionId) -> &RegionRecord {
        self.regions.get(r)
    }

    /// Whether region `a` outlives region `b` at runtime.
    pub fn region_outlives(&self, a: RegionId, b: RegionId) -> bool {
        self.regions.outlives(a, b)
    }

    /// Creates a region (plus instances of all its declared subregions),
    /// pushes it on the creating thread's stack, and charges the creation
    /// cost (bookkeeping per region + zeroing of all transitive LT
    /// capacity).
    ///
    /// # Errors
    ///
    /// Real-time threads cannot create regions (creation allocates memory
    /// and synchronizes with the collector); detected when checks run.
    pub fn create_region(
        &mut self,
        t: ThreadId,
        spec: RegionSpec,
        shared: bool,
    ) -> Result<RegionId, RtError> {
        if self.threads[t.0 as usize].class == ThreadClass::RealTime {
            // A heap-allocation check site: region creation allocates.
            let ok = !self.mode.checks_run();
            self.note_check(t, CheckKind::HeapAlloc, 0, ok);
            if !ok {
                return Err(RtError::HeapAllocFromRealTime { thread: t });
            }
        }
        let outlived_by: BTreeSet<RegionId> = self.regions.alive_ids().into_iter().collect();
        let lt_bytes = spec.transitive_lt_bytes();
        let class = if shared {
            RegionClass::Shared
        } else {
            RegionClass::Local { owner: t }
        };
        let (id, n) = self.regions.create(spec, class, outlived_by);
        self.metrics.record_regions_created(n as u64);
        self.clock
            .advance(self.cost.region_create * n as u64 + self.cost.zeroing(lt_bytes));
        self.regions.get_mut(id).thread_count = 1;
        self.threads[t.0 as usize].region_stack.push(id);
        self.emit(|at| TraceEvent::RegionCreate {
            at,
            thread: t,
            region: id,
            count: n as u64,
        });
        self.emit(|at| TraceEvent::RegionEnter {
            at,
            thread: t,
            region: id,
            fresh: false,
        });
        Ok(id)
    }

    /// Exits a region previously created with [`Runtime::create_region`]
    /// (end of the lexical region block).
    pub fn exit_created_region(&mut self, t: ThreadId, r: RegionId) -> Result<(), RtError> {
        let stack = &mut self.threads[t.0 as usize].region_stack;
        match stack.pop() {
            Some(top) if top == r => {}
            other => {
                return Err(RtError::Protocol(format!(
                    "exit_created_region: expected region#{} on top of the stack, found {:?}",
                    r.0, other
                )))
            }
        }
        self.clock.advance(self.cost.region_enter_exit);
        self.emit(|at| TraceEvent::RegionExit {
            at,
            thread: t,
            region: r,
        });
        self.release_region(r)
    }

    /// Decrements a region's thread count and deletes/flushes it if it
    /// emptied.
    fn release_region(&mut self, r: RegionId) -> Result<(), RtError> {
        let rec = self.regions.get_mut(r);
        if rec.thread_count == 0 {
            return Err(RtError::Protocol(format!(
                "release of region#{} with zero count",
                r.0
            )));
        }
        rec.thread_count -= 1;
        let empty = rec.thread_count == 0;
        let deletes = matches!(rec.class, RegionClass::Local { .. } | RegionClass::Shared);
        let flushes = matches!(rec.class, RegionClass::SubInstance { .. });
        // The dead buffer is reused across releases: region exit is on the
        // interpreter's hot path and must not allocate per call.
        let mut dead = std::mem::take(&mut self.dead_buf);
        dead.clear();
        if deletes && empty {
            // A local region — or a top-level shared region — is deleted
            // when the last thread exits it.
            self.regions.delete_into(r, &mut dead);
            self.metrics.record_region_deleted();
            for &o in &dead {
                self.objects.kill(o);
            }
            self.emit(|at| TraceEvent::RegionDelete { at, region: r });
        } else if flushes && empty && self.regions.can_flush(r) {
            // Subregions are *flushed* (not deleted) when empty, and only
            // if their portals are null and their own subregions are
            // flushed.
            self.regions.flush_into(r, &mut dead);
            self.metrics.record_region_flushed();
            for &o in &dead {
                self.objects.kill(o);
            }
            self.emit(|at| TraceEvent::RegionFlush { at, region: r });
        }
        self.dead_buf = dead;
        Ok(())
    }

    // -------------------------------------------- subregion enter/exit (2φ)

    /// Tries to take the bookkeeping lock of `region` (used around
    /// subregion entry/exit). Returns `false` if another thread holds it —
    /// the caller must retry later (this is the RTSJ priority-inversion
    /// window: a regular thread paused by the GC while holding the lock
    /// blocks a real-time thread trying to enter).
    pub fn try_lock_region(&mut self, t: ThreadId, region: RegionId) -> bool {
        let rec = self.regions.get_mut(region);
        match rec.lock {
            None => {
                rec.lock = Some(t);
                true
            }
            Some(holder) => holder == t,
        }
    }

    /// Releases the bookkeeping lock.
    pub fn unlock_region(&mut self, t: ThreadId, region: RegionId) -> Result<(), RtError> {
        let rec = self.regions.get_mut(region);
        if rec.lock != Some(t) {
            return Err(RtError::Protocol(format!(
                "thread#{} released a lock it does not hold on region#{}",
                t.0, region.0
            )));
        }
        rec.lock = None;
        Ok(())
    }

    /// Records cycles a real-time thread spent waiting for a region lock.
    pub fn note_rt_lock_wait(&mut self, cycles: u64) {
        self.metrics.record_rt_lock_wait(cycles);
        self.emit(|at| TraceEvent::RtLockWait { at, cycles });
    }

    /// The region whose bookkeeping lock must be held to enter subregion
    /// `member` of `parent`: the member's current *instance* (so disjoint
    /// subregions never contend — the basis of the type system's
    /// priority-inversion fix), or the parent itself when a `fresh`
    /// instance will replace the member.
    pub fn subregion_lock_target(
        &self,
        parent: RegionId,
        member: &str,
        fresh: bool,
    ) -> Result<RegionId, RtError> {
        if fresh {
            return Ok(parent);
        }
        self.regions
            .get(parent)
            .subs
            .get(member)
            .copied()
            .ok_or_else(|| RtError::Protocol(format!("no subregion member `{member}`")))
    }

    /// Enters subregion `member` of `parent`. The caller must hold the
    /// lock returned by [`Runtime::subregion_lock_target`]. With `fresh`,
    /// a brand-new instance replaces the current one. Returns the entered
    /// instance.
    ///
    /// # Errors
    ///
    /// Reservation violations (an RT thread entering a `NoRT` subregion or
    /// vice versa) when checks run; unknown members are protocol errors.
    pub fn enter_subregion_locked(
        &mut self,
        t: ThreadId,
        parent: RegionId,
        member: &str,
        fresh: bool,
    ) -> Result<RegionId, RtError> {
        let lock_target = self.subregion_lock_target(parent, member, fresh)?;
        if self.regions.get(lock_target).lock != Some(t) {
            return Err(RtError::Protocol(format!(
                "enter_subregion without holding the lock on region#{}",
                lock_target.0
            )));
        }
        let cur = *self
            .regions
            .get(parent)
            .subs
            .get(member)
            .ok_or_else(|| RtError::Protocol(format!("no subregion member `{member}`")))?;
        let target = if fresh {
            // Replace the member with a brand-new instance; the old one
            // lives on until its own threads exit.
            let spec = self.regions.get(cur).spec.clone();
            let mut outlives = self.regions.get(parent).outlived_by.clone();
            outlives.insert(parent);
            let gen = self.regions.get(cur).generation + 1;
            if self.threads[t.0 as usize].class == ThreadClass::RealTime {
                // Creating a fresh instance allocates memory: a
                // heap-allocation check site.
                let ok = !self.mode.checks_run();
                self.note_check(t, CheckKind::HeapAlloc, 0, ok);
                if !ok {
                    return Err(RtError::HeapAllocFromRealTime { thread: t });
                }
            }
            let lt = spec.transitive_lt_bytes();
            let (id, n) = self.regions.create(
                spec,
                RegionClass::SubInstance {
                    parent,
                    member: member.to_string(),
                },
                outlives,
            );
            self.metrics.record_regions_created(n as u64);
            self.clock
                .advance(self.cost.region_create * n as u64 + self.cost.zeroing(lt));
            self.regions.get_mut(id).generation = gen;
            self.regions
                .get_mut(parent)
                .subs
                .insert(member.to_string(), id);
            self.emit(|at| TraceEvent::RegionCreate {
                at,
                thread: t,
                region: id,
                count: n as u64,
            });
            id
        } else {
            cur
        };
        let tclass = self.threads[t.0 as usize].class;
        let rec = self.regions.get(target);
        let reservation = rec.spec.reservation;
        let state = rec.state;
        if reservation != Reservation::Any {
            // A reservation check site (only reserved subregions check).
            let bad = match reservation {
                Reservation::Any => false,
                Reservation::RtOnly => tclass == ThreadClass::Regular,
                Reservation::NoRtOnly => tclass == ThreadClass::RealTime,
            };
            let checked_bad = self.mode.checks_run() && bad;
            self.note_check(t, CheckKind::Reservation, 0, !checked_bad);
            if checked_bad {
                return Err(RtError::ReservationViolation {
                    thread: t,
                    region: target,
                });
            }
        }
        match state {
            RegionState::Alive => {}
            RegionState::Flushed => self.regions.revive(target),
            RegionState::Deleted => return Err(RtError::RegionNotAlive { region: target }),
        }
        self.regions.get_mut(target).thread_count += 1;
        self.threads[t.0 as usize].region_stack.push(target);
        self.clock.advance(self.cost.region_enter_exit);
        self.emit(|at| TraceEvent::RegionEnter {
            at,
            thread: t,
            region: target,
            fresh,
        });
        Ok(target)
    }

    /// Exits a subregion (the caller must hold the *instance's own* lock:
    /// the flushability test and the flush must be atomic). Flushes the
    /// instance if it emptied and is flushable.
    pub fn exit_subregion_locked(&mut self, t: ThreadId, r: RegionId) -> Result<(), RtError> {
        if !matches!(self.regions.get(r).class, RegionClass::SubInstance { .. }) {
            return Err(RtError::Protocol(format!(
                "region#{} is not a subregion instance",
                r.0
            )));
        }
        if self.regions.get(r).lock != Some(t) {
            return Err(RtError::Protocol(format!(
                "exit_subregion without holding the lock on region#{}",
                r.0
            )));
        }
        let stack = &mut self.threads[t.0 as usize].region_stack;
        match stack.pop() {
            Some(top) if top == r => {}
            other => {
                return Err(RtError::Protocol(format!(
                    "exit_subregion: expected region#{} on top of the stack, found {:?}",
                    r.0, other
                )))
            }
        }
        self.clock.advance(self.cost.region_enter_exit);
        self.emit(|at| TraceEvent::RegionExit {
            at,
            thread: t,
            region: r,
        });
        self.release_region(r)
    }

    // ---------------------------------------------------------- allocation

    /// Resolves a runtime owner to the region it denotes.
    pub fn owner_region(&self, o: RuntimeOwner) -> RegionId {
        match o {
            RuntimeOwner::Region(r) => r,
            RuntimeOwner::Object(obj) => self.objects.get(obj).region,
        }
    }

    /// Allocates an object owned by `first_owner` (and therefore in that
    /// owner's region), charging the policy-dependent cost.
    ///
    /// # Errors
    ///
    /// LT capacity overflow (always checked — the paper's LT regions throw
    /// when undersized); heap/VT allocation from a real-time thread (when
    /// checks run); allocation into a dead region.
    pub fn alloc(
        &mut self,
        t: ThreadId,
        first_owner: RuntimeOwner,
        class_name: impl Into<Symbol>,
        owners: Vec<RuntimeOwner>,
        n_fields: usize,
    ) -> Result<ObjId, RtError> {
        let class_name = class_name.into();
        let region = self.owner_region(first_owner);
        let rec = self.regions.get(region);
        if !rec.is_alive() {
            return Err(RtError::RegionNotAlive { region });
        }
        let policy = rec.spec.policy;
        let used = rec.used;
        let committed = rec.committed;
        let size = object_size(n_fields);
        let tclass = self.threads[t.0 as usize].class;
        let is_heap = region == self.heap;
        let mut cycles = self.cost.alloc_base + self.cost.zeroing(size);
        match policy {
            AllocPolicy::Lt { capacity } => {
                // The LT capacity check is *not* an elidable RTSJ check:
                // the paper's LT regions throw when undersized in every
                // mode, so it is not recorded as a check site.
                if used + size > capacity {
                    return Err(RtError::LtCapacityExceeded {
                        region,
                        capacity,
                        requested: size,
                    });
                }
            }
            AllocPolicy::Vt => {
                if is_heap {
                    if tclass == ThreadClass::RealTime {
                        let ok = !self.mode.checks_run();
                        self.note_check(t, CheckKind::HeapAlloc, 0, ok);
                        if !ok {
                            return Err(RtError::HeapAllocFromRealTime { thread: t });
                        }
                    }
                    cycles += self.cost.heap_alloc;
                    self.gc.debt += size;
                    if self.gc_enabled && self.gc.debt >= self.cost.gc_threshold_bytes {
                        self.gc.pending = true;
                        self.gc.debt = 0;
                    }
                } else if used + size > committed {
                    // Need a fresh chunk: variable-time work.
                    if tclass == ThreadClass::RealTime {
                        let ok = !self.mode.checks_run();
                        self.note_check(t, CheckKind::HeapAlloc, 0, ok);
                        if !ok {
                            return Err(RtError::HeapAllocFromRealTime { thread: t });
                        }
                    }
                    let needed = used + size - committed;
                    let chunks = needed.div_ceil(self.cost.vt_chunk_bytes);
                    cycles += self.cost.vt_chunk * chunks;
                    self.regions.get_mut(region).committed += chunks * self.cost.vt_chunk_bytes;
                }
            }
        }
        let rec = self.regions.get_mut(region);
        rec.used += size;
        rec.peak_used = rec.peak_used.max(rec.used);
        let id = match policy {
            // LT fast path: field slots are bump-allocated from the
            // region's contiguous arena (a pointer slide — the memory was
            // committed and zeroed at region creation).
            AllocPolicy::Lt { .. } => {
                let base = rec.arena.len() as u32;
                rec.arena.resize(base as usize + n_fields, Value::Null);
                self.objects
                    .alloc_in_arena(class_name, region, owners, base, n_fields as u32)
            }
            AllocPolicy::Vt => self.objects.alloc(class_name, region, owners, n_fields),
        };
        self.regions.get_mut(region).objects.push(id);
        self.clock.advance(cycles);
        self.metrics.record_alloc(size, cycles);
        self.emit(|at| TraceEvent::Alloc {
            at,
            thread: t,
            region,
            object: id,
            class: class_name.to_string(),
            bytes: size,
            cycles,
        });
        Ok(id)
    }

    /// Initializes a field slot as part of object construction: no checks,
    /// no cost (the zeroing cost was charged by [`Runtime::alloc`]). Used
    /// by the interpreter to set primitive fields to `0`/`false`.
    pub fn init_field_raw(&mut self, obj: ObjId, idx: usize, v: Value) {
        *self.field_mut(obj, idx) = v;
    }

    /// Resolves a field slot for writing, whether the object's slots are
    /// boxed or live in its region's arena.
    fn field_mut(&mut self, obj: ObjId, idx: usize) -> &mut Value {
        let rec = self.objects.get(obj);
        match rec.storage {
            FieldStorage::Boxed(_) => match &mut self.objects.get_mut(obj).storage {
                FieldStorage::Boxed(fields) => &mut fields[idx],
                FieldStorage::Arena { .. } => unreachable!(),
            },
            FieldStorage::Arena { base, .. } => {
                let region = rec.region;
                &mut self.regions.get_mut(region).arena[base as usize + idx]
            }
        }
    }

    /// The field slots of an object, in class layout order, wherever they
    /// are stored (boxed or arena-backed). Empty for dead objects.
    pub fn object_fields(&self, obj: ObjId) -> &[Value] {
        let rec = self.objects.get(obj);
        match &rec.storage {
            FieldStorage::Boxed(fields) => fields,
            FieldStorage::Arena { base, len } => {
                let base = *base as usize;
                &self.regions.get(rec.region).arena[base..base + *len as usize]
            }
        }
    }

    /// The region an object lives in.
    pub fn region_of(&self, obj: ObjId) -> RegionId {
        self.objects.get(obj).region
    }

    /// Read-only access to an object record.
    pub fn object(&self, obj: ObjId) -> &crate::objects::ObjectRecord {
        self.objects.get(obj)
    }

    /// Read-only access to the object store.
    pub fn objects(&self) -> &ObjectStore {
        &self.objects
    }

    /// Number of region records ever created (including dead ones).
    pub(crate) fn regions_len(&self) -> usize {
        self.regions.len()
    }

    /// Per-region peak usage, labelled for sizing advice: one entry per
    /// region record as `(label, policy, peak bytes, capacity bytes)`.
    pub fn region_peaks(&self) -> Vec<(String, AllocPolicy, u64, u64)> {
        (0..self.regions.len() as u32)
            .map(RegionId)
            .map(|r| {
                let rec = self.regions.get(r);
                let label = match &rec.class {
                    RegionClass::Heap => "heap".to_string(),
                    RegionClass::Immortal => "immortal".to_string(),
                    RegionClass::Local { .. } => format!("local r{}", r.0),
                    RegionClass::Shared => format!(
                        "{} r{}",
                        rec.spec.kind_name.as_deref().unwrap_or("shared"),
                        r.0
                    ),
                    RegionClass::SubInstance { member, .. } => format!(
                        "{}.{member} r{}",
                        rec.spec.kind_name.as_deref().unwrap_or("sub"),
                        r.0
                    ),
                };
                let capacity = match rec.spec.policy {
                    AllocPolicy::Lt { capacity } => capacity,
                    AllocPolicy::Vt => rec.committed,
                };
                (label, rec.spec.policy, rec.peak_used, capacity)
            })
            .collect()
    }

    // ------------------------------------------------------ field accesses

    fn value_is_reflike(v: &Value) -> bool {
        matches!(v, Value::Ref(_) | Value::Null)
    }

    /// Checks a reference load by thread `t` that produced `v` from an
    /// object or portal in `holder_region`.
    ///
    /// As in the RTSJ, reference *loads* are only checked for
    /// `NoHeapRealtimeThread`s (the read barrier keeps them away from heap
    /// references); regular threads pay no per-load cost. The site is
    /// recorded in every mode — charged, audited, or elided — so elision
    /// counts line up one-to-one with the checks a `Dynamic` run performs.
    fn check_load(
        &mut self,
        t: ThreadId,
        holder_region: RegionId,
        v: &Value,
    ) -> Result<(), RtError> {
        if !Self::value_is_reflike(v) || self.threads[t.0 as usize].class != ThreadClass::RealTime {
            return Ok(());
        }
        // A reference-check site. Evaluate the predicate only when the
        // check runs; an elided check cannot fail.
        let err: Option<RtError> = if self.mode.checks_run() {
            if holder_region == self.heap {
                Some(if let Value::Ref(o) = v {
                    RtError::HeapRefFromRealTime {
                        thread: t,
                        object: *o,
                    }
                } else {
                    RtError::HeapAllocFromRealTime { thread: t }
                })
            } else if let Value::Ref(o) = v {
                if self.objects.get(*o).region == self.heap {
                    Some(RtError::HeapRefFromRealTime {
                        thread: t,
                        object: *o,
                    })
                } else {
                    None
                }
            } else {
                None
            }
        } else {
            None
        };
        self.note_check(t, CheckKind::Reference, self.cost.load_check, err.is_none());
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Checks a reference store of `new` over `old` into `holder_region`.
    ///
    /// The counted site is a store of an actual reference (storing `null`
    /// is always legal and free). One uncounted failure path remains: a
    /// real-time thread overwriting a heap reference with `null` fails
    /// when checks run but is not a check site — mirroring the RTSJ,
    /// whose write barrier only prices reference stores.
    fn check_store(
        &mut self,
        t: ThreadId,
        holder_region: RegionId,
        old: &Value,
        new: &Value,
    ) -> Result<(), RtError> {
        if !(Self::value_is_reflike(new) || Self::value_is_reflike(old)) {
            return Ok(());
        }
        let counted = matches!(new, Value::Ref(_));
        let err: Option<RtError> = if self.mode.checks_run() {
            // The RTSJ assignment check: the stored reference's region
            // must outlive the holder's region.
            let mut found = None;
            if let Value::Ref(o) = new {
                let vr = self.objects.get(*o).region;
                if !self.regions.outlives(vr, holder_region) {
                    found = Some(RtError::IllegalAssignment {
                        holder_region,
                        value_region: vr,
                    });
                }
            }
            // Real-time threads must not create or destroy heap
            // references.
            if found.is_none() && self.threads[t.0 as usize].class == ThreadClass::RealTime {
                for v in [old, new] {
                    if let Value::Ref(o) = v {
                        if self.objects.get(*o).region == self.heap {
                            found = Some(RtError::HeapRefFromRealTime {
                                thread: t,
                                object: *o,
                            });
                            break;
                        }
                    }
                }
            }
            found
        } else {
            None
        };
        if counted {
            self.note_check(
                t,
                CheckKind::Assignment,
                self.cost.store_check,
                err.is_none(),
            );
        }
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Loads a field.
    ///
    /// # Errors
    ///
    /// Dangling access to a dead object (well-typed programs never do
    /// this); RTSJ reference-check failures when checks run.
    pub fn load_field(&mut self, t: ThreadId, obj: ObjId, idx: usize) -> Result<Value, RtError> {
        self.clock.advance(self.cost.field_access);
        let rec = self.objects.get(obj);
        if !rec.alive {
            return Err(RtError::DanglingReference { object: obj });
        }
        let region = rec.region;
        let v = match &rec.storage {
            FieldStorage::Boxed(fields) => fields[idx].clone(),
            FieldStorage::Arena { base, .. } => {
                self.regions.get(region).arena[*base as usize + idx].clone()
            }
        };
        self.check_load(t, region, &v)?;
        Ok(v)
    }

    /// Stores a field.
    ///
    /// # Errors
    ///
    /// Dangling access; illegal assignment (value's region does not
    /// outlive the holder's); RT heap-reference violations — when checks
    /// run.
    pub fn store_field(
        &mut self,
        t: ThreadId,
        obj: ObjId,
        idx: usize,
        v: Value,
    ) -> Result<(), RtError> {
        self.clock.advance(self.cost.field_access);
        let rec = self.objects.get(obj);
        if !rec.alive {
            return Err(RtError::DanglingReference { object: obj });
        }
        let region = rec.region;
        let old = match &rec.storage {
            FieldStorage::Boxed(fields) => fields[idx].clone(),
            FieldStorage::Arena { base, .. } => {
                self.regions.get(region).arena[*base as usize + idx].clone()
            }
        };
        self.check_store(t, region, &old, &v)?;
        *self.field_mut(obj, idx) = v;
        Ok(())
    }

    /// Loads a portal field of a region.
    pub fn load_portal(&mut self, t: ThreadId, r: RegionId, name: &str) -> Result<Value, RtError> {
        self.clock.advance(self.cost.field_access);
        let rec = self.regions.get(r);
        if !rec.is_alive() {
            return Err(RtError::RegionNotAlive { region: r });
        }
        let v = rec
            .portals
            .get(name)
            .cloned()
            .ok_or_else(|| RtError::Protocol(format!("no portal `{name}`")))?;
        self.check_load(t, r, &v)?;
        self.emit(|at| TraceEvent::PortalRead {
            at,
            thread: t,
            region: r,
            name: name.to_string(),
        });
        Ok(v)
    }

    /// Stores a portal field of a region. The portal rule is the field
    /// rule: the value must be allocated in `r` or a region outliving `r`.
    pub fn store_portal(
        &mut self,
        t: ThreadId,
        r: RegionId,
        name: &str,
        v: Value,
    ) -> Result<(), RtError> {
        self.clock.advance(self.cost.field_access);
        let rec = self.regions.get(r);
        if !rec.is_alive() {
            return Err(RtError::RegionNotAlive { region: r });
        }
        let old = rec
            .portals
            .get(name)
            .cloned()
            .ok_or_else(|| RtError::Protocol(format!("no portal `{name}`")))?;
        self.check_store(t, r, &old, &v)?;
        self.regions.get_mut(r).portals.insert(name.to_string(), v);
        self.emit(|at| TraceEvent::PortalWrite {
            at,
            thread: t,
            region: r,
            name: name.to_string(),
        });
        Ok(())
    }

    // ------------------------------------------------------------------ GC

    /// Polls the collector at a safepoint: starts a pending collection.
    pub fn poll_gc(&mut self) {
        if self.gc.pending && self.gc.collecting_until.is_none() {
            self.gc.pending = false;
            self.gc.collecting_until = Some(self.clock.now() + self.cost.gc_pause);
            let pause = self.cost.gc_pause;
            self.metrics.record_gc(pause);
            self.emit(|at| TraceEvent::Gc {
                at,
                pause_cycles: pause,
            });
        }
        if let Some(until) = self.gc.collecting_until {
            if self.clock.now() >= until {
                self.gc.collecting_until = None;
            }
        }
    }

    /// If a collection is in progress, the virtual time regular threads
    /// are paused until.
    pub fn gc_blocking_until(&self) -> Option<u64> {
        self.gc
            .collecting_until
            .filter(|until| self.clock.now() < *until)
    }

    /// Forces a collection to start now (used by the priority-inversion
    /// experiment).
    pub fn force_gc(&mut self) {
        self.gc.pending = true;
        self.poll_gc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt() -> Runtime {
        Runtime::with_mode(CheckMode::Dynamic)
    }

    fn spec_buffer() -> RegionSpec {
        RegionSpec {
            kind_name: Some("BufferRegion".into()),
            policy: AllocPolicy::Vt,
            reservation: Reservation::Any,
            portals: vec![],
            subregions: vec![(
                "b".into(),
                RegionSpec {
                    kind_name: Some("BufferSubRegion".into()),
                    policy: AllocPolicy::Lt { capacity: 4096 },
                    reservation: Reservation::Any,
                    portals: vec!["f".into()],
                    subregions: vec![],
                },
            )],
        }
    }

    #[test]
    fn alloc_in_local_region_and_delete_on_exit() {
        let mut r = rt();
        let t = r.main_thread();
        let region = r.create_region(t, RegionSpec::plain_vt(), false).unwrap();
        let obj = r
            .alloc(t, RuntimeOwner::Region(region), "C", vec![], 2)
            .unwrap();
        assert!(r.object(obj).alive);
        assert_eq!(r.current_region(t), region);
        r.exit_created_region(t, region).unwrap();
        assert!(!r.object(obj).alive, "objects die with their region");
        assert_eq!(r.current_region(t), r.heap());
    }

    #[test]
    fn illegal_assignment_detected() {
        let mut r = rt();
        let t = r.main_thread();
        let outer = r.create_region(t, RegionSpec::plain_vt(), false).unwrap();
        let outer_obj = r
            .alloc(t, RuntimeOwner::Region(outer), "Outer", vec![], 1)
            .unwrap();
        let inner = r.create_region(t, RegionSpec::plain_vt(), false).unwrap();
        let inner_obj = r
            .alloc(t, RuntimeOwner::Region(inner), "Inner", vec![], 1)
            .unwrap();
        // Inner object into outer object's field: illegal (inner dies first).
        let e = r
            .store_field(t, outer_obj, 0, Value::Ref(inner_obj))
            .unwrap_err();
        assert!(matches!(e, RtError::IllegalAssignment { .. }));
        // The other direction is fine.
        r.store_field(t, inner_obj, 0, Value::Ref(outer_obj))
            .unwrap_or_else(|e| panic!("legal store failed: {e}"));
    }

    #[test]
    fn static_mode_skips_checks() {
        let mut r = Runtime::with_mode(CheckMode::Static);
        let t = r.main_thread();
        let outer = r.create_region(t, RegionSpec::plain_vt(), false).unwrap();
        let outer_obj = r
            .alloc(t, RuntimeOwner::Region(outer), "O", vec![], 1)
            .unwrap();
        let inner = r.create_region(t, RegionSpec::plain_vt(), false).unwrap();
        let inner_obj = r
            .alloc(t, RuntimeOwner::Region(inner), "I", vec![], 0)
            .unwrap();
        // No check fires in static mode (the type system would have
        // rejected this program).
        r.store_field(t, outer_obj, 0, Value::Ref(inner_obj))
            .unwrap();
        assert_eq!(r.stats().store_checks, 0);
        // But dangling access still fails hard.
        r.exit_created_region(t, inner).unwrap();
        let e = r.load_field(t, inner_obj, 0).unwrap_err();
        assert!(matches!(e, RtError::DanglingReference { .. }));
    }

    /// A short legal workout touching several check sites.
    fn workout(r: &mut Runtime) {
        let t = r.main_thread();
        let region = r.create_region(t, RegionSpec::plain_vt(), false).unwrap();
        let a = r
            .alloc(t, RuntimeOwner::Region(region), "A", vec![], 1)
            .unwrap();
        let b = r
            .alloc(t, RuntimeOwner::Region(region), "B", vec![], 0)
            .unwrap();
        r.store_field(t, a, 0, Value::Ref(b)).unwrap();
        let rt_thread = r.spawn_thread(t, ThreadClass::RealTime);
        // RT loads from a non-heap region: reference-check sites.
        r.load_field(rt_thread, a, 0).unwrap();
        r.load_field(rt_thread, a, 0).unwrap();
        r.finish_thread(rt_thread).unwrap();
        r.exit_created_region(t, region).unwrap();
    }

    #[test]
    fn static_elisions_mirror_dynamic_checks() {
        let mut dynamic = Runtime::with_mode(CheckMode::Dynamic);
        workout(&mut dynamic);
        let mut fully_static = Runtime::with_mode(CheckMode::Static);
        workout(&mut fully_static);
        let d = dynamic.metrics_snapshot();
        let s = fully_static.metrics_snapshot();
        assert!(d.checks_performed() > 0);
        assert_eq!(d.checks_elided(), 0);
        assert_eq!(s.checks_performed(), 0);
        for kind in CheckKind::ALL {
            assert_eq!(
                s.check(kind).elided,
                d.check(kind).performed,
                "elision parity for {}",
                kind.name()
            );
            assert_eq!(d.check(kind).failed, 0);
            assert_eq!(s.check(kind).failed, 0);
        }
        assert_eq!(s.check_cycles(), 0, "elided checks cost nothing");
        assert!(
            s.total_cycles < d.total_cycles,
            "static runs are cheaper: {} vs {}",
            s.total_cycles,
            d.total_cycles
        );
    }

    #[test]
    fn failed_checks_are_counted() {
        let mut r = rt();
        let t = r.main_thread();
        let outer = r.create_region(t, RegionSpec::plain_vt(), false).unwrap();
        let outer_obj = r
            .alloc(t, RuntimeOwner::Region(outer), "O", vec![], 1)
            .unwrap();
        let inner = r.create_region(t, RegionSpec::plain_vt(), false).unwrap();
        let inner_obj = r
            .alloc(t, RuntimeOwner::Region(inner), "I", vec![], 0)
            .unwrap();
        r.store_field(t, outer_obj, 0, Value::Ref(inner_obj))
            .unwrap_err();
        let snap = r.metrics_snapshot();
        assert_eq!(snap.check(CheckKind::Assignment).performed, 1);
        assert_eq!(snap.check(CheckKind::Assignment).failed, 1);
    }

    #[test]
    fn trace_sink_captures_the_run() {
        use crate::events::JsonlSink;
        use crate::json::Json;

        let mut r = rt();
        r.set_trace_sink(Box::new(JsonlSink::new()));
        workout(&mut r);
        let mut sink = r.take_trace_sink().expect("sink installed");
        assert!(!r.tracing_enabled());
        let lines = sink.drain_jsonl();
        let mut tags = std::collections::BTreeSet::new();
        let mut last_at = 0;
        for line in &lines {
            let v = Json::parse(line).unwrap_or_else(|e| panic!("invalid JSONL `{line}`: {e}"));
            let at = v.get("at").and_then(Json::as_u64).expect("at field");
            assert!(at >= last_at, "virtual timestamps are non-decreasing");
            last_at = at;
            tags.insert(v.get("ev").and_then(Json::as_str).unwrap().to_string());
        }
        for expected in [
            "thread_start",
            "thread_stop",
            "region_create",
            "region_enter",
            "region_exit",
            "region_delete",
            "alloc",
            "check",
        ] {
            assert!(tags.contains(expected), "missing `{expected}` in {tags:?}");
        }
        // Untraced runs emit nothing and behave identically.
        let mut plain = rt();
        workout(&mut plain);
        assert_eq!(plain.now(), r.now(), "tracing does not perturb the clock");
        assert_eq!(plain.metrics_snapshot(), r.metrics_snapshot());
    }

    #[test]
    fn check_costs_charged_only_in_dynamic_mode() {
        for (mode, expect_cost) in [(CheckMode::Dynamic, true), (CheckMode::Audit, false)] {
            let mut r = Runtime::with_mode(mode);
            let t = r.main_thread();
            let a = r
                .alloc(t, RuntimeOwner::Region(r.heap()), "A", vec![], 1)
                .unwrap();
            let b = r
                .alloc(t, RuntimeOwner::Region(r.heap()), "B", vec![], 0)
                .unwrap();
            let before = r.now();
            r.store_field(t, a, 0, Value::Ref(b)).unwrap();
            let cost = r.now() - before;
            assert_eq!(r.stats().store_checks, 1);
            let field = r.cost_model().field_access;
            if expect_cost {
                assert_eq!(cost, field + r.cost_model().store_check);
            } else {
                assert_eq!(cost, field);
            }
        }
    }

    #[test]
    fn lt_region_overflow() {
        let mut r = rt();
        let t = r.main_thread();
        let region = r
            .create_region(
                t,
                RegionSpec {
                    policy: AllocPolicy::Lt { capacity: 64 },
                    ..RegionSpec::plain_vt()
                },
                false,
            )
            .unwrap();
        // 16 header + 8 = 24 bytes each; two fit (48), the third does not.
        r.alloc(t, RuntimeOwner::Region(region), "C", vec![], 1)
            .unwrap();
        r.alloc(t, RuntimeOwner::Region(region), "C", vec![], 1)
            .unwrap();
        let e = r
            .alloc(t, RuntimeOwner::Region(region), "C", vec![], 1)
            .unwrap_err();
        assert!(matches!(e, RtError::LtCapacityExceeded { .. }));
    }

    #[test]
    fn lt_alloc_cost_linear_in_size() {
        let mut r = rt();
        let t = r.main_thread();
        let region = r
            .create_region(
                t,
                RegionSpec {
                    policy: AllocPolicy::Lt { capacity: 1 << 20 },
                    ..RegionSpec::plain_vt()
                },
                false,
            )
            .unwrap();
        let m = r.cost_model().clone();
        let before = r.now();
        r.alloc(t, RuntimeOwner::Region(region), "C", vec![], 0)
            .unwrap();
        let c0 = r.now() - before;
        let before = r.now();
        r.alloc(t, RuntimeOwner::Region(region), "C", vec![], 8)
            .unwrap();
        let c8 = r.now() - before;
        assert_eq!(c0, m.alloc_base + m.zeroing(object_size(0)));
        assert_eq!(c8, m.alloc_base + m.zeroing(object_size(8)));
        assert!(c8 > c0, "zeroing scales with size");
    }

    #[test]
    fn rt_thread_restrictions() {
        let mut r = rt();
        let main = r.main_thread();
        let shared = r.create_region(main, spec_buffer(), true).unwrap();
        let rt_thread = r.spawn_thread(main, ThreadClass::RealTime);
        // RT thread cannot allocate on the heap.
        let e = r
            .alloc(rt_thread, RuntimeOwner::Region(r.heap()), "C", vec![], 0)
            .unwrap_err();
        assert!(matches!(e, RtError::HeapAllocFromRealTime { .. }));
        // RT thread cannot create regions.
        let e = r
            .create_region(rt_thread, RegionSpec::plain_vt(), false)
            .unwrap_err();
        assert!(matches!(e, RtError::HeapAllocFromRealTime { .. }));
        // RT thread cannot read heap references.
        let heap_obj = r
            .alloc(main, RuntimeOwner::Region(r.heap()), "H", vec![], 1)
            .unwrap();
        let shared_obj = r
            .alloc(main, RuntimeOwner::Region(shared), "S", vec![], 1)
            .unwrap();
        r.store_field(main, shared_obj, 0, Value::Ref(heap_obj))
            .unwrap();
        let e = r.load_field(rt_thread, shared_obj, 0).unwrap_err();
        assert!(matches!(e, RtError::HeapRefFromRealTime { .. }));
    }

    #[test]
    fn shared_region_refcounting_and_subregion_flush() {
        let mut r = rt();
        let main = r.main_thread();
        let shared = r.create_region(main, spec_buffer(), true).unwrap();
        let child = r.spawn_thread(main, ThreadClass::Regular);
        assert_eq!(r.region(shared).thread_count, 2);

        // Child enters the subregion, allocates, stores a portal, exits:
        // not flushed (portal non-null).
        let lock = r.subregion_lock_target(shared, "b", false).unwrap();
        assert!(r.try_lock_region(child, lock));
        let sub = r.enter_subregion_locked(child, shared, "b", false).unwrap();
        r.unlock_region(child, lock).unwrap();
        assert_eq!(lock, sub, "the lock lives on the instance itself");
        let frame = r
            .alloc(child, RuntimeOwner::Region(sub), "Frame", vec![], 0)
            .unwrap();
        r.store_portal(child, sub, "f", Value::Ref(frame)).unwrap();
        assert!(r.try_lock_region(child, sub));
        r.exit_subregion_locked(child, sub).unwrap();
        r.unlock_region(child, sub).unwrap();
        assert!(r.object(frame).alive, "portal keeps the subregion alive");

        // Main enters, nulls the portal, exits: now it flushes.
        assert!(r.try_lock_region(main, sub));
        let sub2 = r.enter_subregion_locked(main, shared, "b", false).unwrap();
        r.unlock_region(main, sub).unwrap();
        assert_eq!(sub2, sub, "same instance re-entered");
        r.store_portal(main, sub, "f", Value::Null).unwrap();
        assert!(r.try_lock_region(main, sub));
        r.exit_subregion_locked(main, sub).unwrap();
        r.unlock_region(main, sub).unwrap();
        assert!(!r.object(frame).alive, "flushed after portal cleared");
        assert_eq!(r.stats().regions_flushed, 1);

        // LT memory retained: re-entry and allocation needs no new commit.
        assert_eq!(r.region(sub).committed, 4096);

        // Threads exit the shared region; it is deleted at count zero.
        r.finish_thread(child).unwrap();
        assert_eq!(r.region(shared).thread_count, 1);
        r.exit_created_region(main, shared).unwrap();
        assert_eq!(r.region(shared).state, RegionState::Deleted);
    }

    #[test]
    fn fresh_subregion_instances() {
        let mut r = rt();
        let main = r.main_thread();
        let shared = r.create_region(main, spec_buffer(), true).unwrap();
        let s1 = r.subregion_lock_target(shared, "b", false).unwrap();
        assert!(r.try_lock_region(main, s1));
        let entered = r.enter_subregion_locked(main, shared, "b", false).unwrap();
        assert_eq!(entered, s1);
        r.exit_subregion_locked(main, s1).unwrap();
        r.unlock_region(main, s1).unwrap();
        // A fresh instance is created under the *parent's* lock.
        assert!(r.try_lock_region(main, shared));
        let s2 = r.enter_subregion_locked(main, shared, "b", true).unwrap();
        r.unlock_region(main, shared).unwrap();
        assert_ne!(s1, s2);
        assert_eq!(r.region(s2).generation, 1);
        assert_eq!(r.subregion_lock_target(shared, "b", false).unwrap(), s2);
    }

    #[test]
    fn reservation_enforced() {
        let mut r = rt();
        let main = r.main_thread();
        let spec = RegionSpec {
            subregions: vec![(
                "q".into(),
                RegionSpec {
                    policy: AllocPolicy::Lt { capacity: 1024 },
                    reservation: Reservation::RtOnly,
                    ..RegionSpec::plain_vt()
                },
            )],
            ..spec_buffer()
        };
        let shared = r.create_region(main, spec, true).unwrap();
        let lock = r.subregion_lock_target(shared, "q", false).unwrap();
        assert!(r.try_lock_region(main, lock));
        let e = r
            .enter_subregion_locked(main, shared, "q", false)
            .unwrap_err();
        assert!(matches!(e, RtError::ReservationViolation { .. }));
    }

    #[test]
    fn gc_pauses_regular_threads_only() {
        let mut r = rt();
        r.enable_gc(true);
        let main = r.main_thread();
        // Allocate past the GC threshold.
        let threshold = r.cost_model().gc_threshold_bytes;
        let per = object_size(8);
        let n = threshold / per + 1;
        for _ in 0..n {
            r.alloc(main, RuntimeOwner::Region(r.heap()), "X", vec![], 8)
                .unwrap();
        }
        r.poll_gc();
        assert_eq!(r.stats().gc_collections, 1);
        assert!(r.gc_blocking_until().is_some());
        let until = r.gc_blocking_until().unwrap();
        r.charge(until - r.now());
        r.poll_gc();
        assert!(r.gc_blocking_until().is_none());
    }

    #[test]
    fn region_lock_protocol() {
        let mut r = rt();
        let main = r.main_thread();
        let other = r.spawn_thread(main, ThreadClass::RealTime);
        let shared = r.create_region(main, spec_buffer(), true).unwrap();
        assert!(r.try_lock_region(main, shared));
        assert!(r.try_lock_region(main, shared), "re-entrant for holder");
        assert!(!r.try_lock_region(other, shared), "blocked");
        r.unlock_region(main, shared).unwrap();
        assert!(r.try_lock_region(other, shared));
        assert!(r.unlock_region(main, shared).is_err());
        r.note_rt_lock_wait(500);
        r.note_rt_lock_wait(200);
        assert_eq!(r.stats().rt_lock_wait_cycles, 700);
        assert_eq!(r.stats().rt_max_lock_wait, 500);
    }

    #[test]
    fn vt_chunk_costs() {
        let mut r = rt();
        let t = r.main_thread();
        let region = r.create_region(t, RegionSpec::plain_vt(), false).unwrap();
        let m = r.cost_model().clone();
        let before = r.now();
        r.alloc(t, RuntimeOwner::Region(region), "C", vec![], 0)
            .unwrap();
        let first = r.now() - before;
        let before = r.now();
        r.alloc(t, RuntimeOwner::Region(region), "C", vec![], 0)
            .unwrap();
        let second = r.now() - before;
        assert_eq!(first, second + m.vt_chunk, "first alloc grabs a chunk");
    }

    #[test]
    fn owner_region_resolution() {
        let mut r = rt();
        let t = r.main_thread();
        let region = r.create_region(t, RegionSpec::plain_vt(), false).unwrap();
        let owner_obj = r
            .alloc(t, RuntimeOwner::Region(region), "Owner", vec![], 0)
            .unwrap();
        // An object owned by another object is allocated in the owner's
        // region (property O2).
        let owned = r
            .alloc(t, RuntimeOwner::Object(owner_obj), "Owned", vec![], 0)
            .unwrap();
        assert_eq!(r.region_of(owned), region);
    }
}
