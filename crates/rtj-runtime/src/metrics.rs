//! Per-check-kind metrics: counters, cost histograms, snapshots.
//!
//! This module replaces the coarse [`Stats`] struct as the runtime's
//! source of truth. Every dynamic-check *site* the runtime reaches is
//! recorded against a [`CheckKind`] with a [`CheckOutcome`]:
//!
//! * **Charged** — the check ran and its cost was charged on the virtual
//!   clock ([`CheckMode::Dynamic`], the RTSJ baseline);
//! * **Audited** — the check ran at zero cost ([`CheckMode::Audit`]);
//! * **Elided** — the site was reached in [`CheckMode::Static`] and the
//!   check was skipped because the type system already proved it.
//!
//! Counting elisions (instead of silently skipping) is what lets the
//! Figure-12 pipeline state, per check kind, *how many* checks the
//! ownership/region type system removed: because the scheduler is
//! deterministic, a Static run visits exactly the sites a Dynamic run
//! visits, so `static.elided == dynamic.performed` — an invariant the
//! test-suite asserts.
//!
//! [`MetricsRegistry`] is the mutable recorder owned by the runtime;
//! [`MetricsSnapshot`] is the plain-data export: mergeable across runs,
//! serializable to the `rtj-metrics/v1` JSON schema, and convertible
//! back to a legacy [`Stats`] view.
//!
//! [`Stats`]: crate::checks::Stats
//! [`CheckMode::Dynamic`]: crate::checks::CheckMode::Dynamic
//! [`CheckMode::Audit`]: crate::checks::CheckMode::Audit
//! [`CheckMode::Static`]: crate::checks::CheckMode::Static

use crate::checks::{CheckMode, Stats};
use crate::json::{Json, JsonError};

/// The RTSJ dynamic checks the runtime implements, as measurement
/// categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CheckKind {
    /// The assignment check on reference stores: the stored reference's
    /// region must outlive the holder's region (paper §2.2).
    Assignment,
    /// The reference check on loads by `NoHeapRealtimeThread`s: the read
    /// barrier that keeps real-time threads away from heap references.
    Reference,
    /// The heap/variable-time allocation check: real-time threads must
    /// not allocate heap memory or take the variable-time chunk path.
    HeapAlloc,
    /// The subregion reservation check: RT-only / no-RT-only entry
    /// restrictions (paper §2.4).
    Reservation,
}

impl CheckKind {
    /// All kinds, in canonical (serialization) order.
    pub const ALL: [CheckKind; 4] = [
        CheckKind::Assignment,
        CheckKind::Reference,
        CheckKind::HeapAlloc,
        CheckKind::Reservation,
    ];

    /// Stable lower-case name used in JSON and reports.
    pub fn name(self) -> &'static str {
        match self {
            CheckKind::Assignment => "assignment",
            CheckKind::Reference => "reference",
            CheckKind::HeapAlloc => "heap_alloc",
            CheckKind::Reservation => "reservation",
        }
    }

    /// Parses a [`CheckKind::name`] back.
    pub fn parse(name: &str) -> Option<CheckKind> {
        CheckKind::ALL.into_iter().find(|k| k.name() == name)
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// What happened at a dynamic-check site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckOutcome {
    /// The check ran and its cost was charged (`Dynamic` mode).
    Charged,
    /// The check ran at zero cost (`Audit` mode).
    Audited,
    /// The check was elided — the site was reached in `Static` mode.
    Elided,
}

impl CheckOutcome {
    /// Stable lower-case name used in trace events.
    pub fn name(self) -> &'static str {
        match self {
            CheckOutcome::Charged => "charged",
            CheckOutcome::Audited => "audited",
            CheckOutcome::Elided => "elided",
        }
    }
}

/// A log₂-bucketed histogram of virtual-cycle costs.
///
/// Bucket `0` holds zero-cost samples; bucket `i ≥ 1` holds samples in
/// `[2^(i-1), 2^i)`. 65 buckets cover the full `u64` range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Raw bucket counts.
    pub buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; 65] }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, cycles: u64) {
        self.buckets[Self::bucket_index(cycles)] += 1;
    }

    /// The bucket a value falls in.
    pub fn bucket_index(cycles: u64) -> usize {
        (64 - cycles.leading_zeros()) as usize
    }

    /// Inclusive lower bound of a bucket.
    pub fn bucket_floor(index: usize) -> u64 {
        if index == 0 {
            0
        } else {
            1u64 << (index - 1)
        }
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    fn to_json(&self) -> Json {
        // Sparse: only non-empty buckets, as [index, count] pairs.
        Json::Arr(
            self.buckets
                .iter()
                .enumerate()
                .filter(|(_, c)| **c > 0)
                .map(|(i, c)| Json::Arr(vec![Json::Int(i as i64), Json::Int(*c as i64)]))
                .collect(),
        )
    }

    fn from_json(v: &Json) -> Result<Histogram, JsonError> {
        let mut h = Histogram::default();
        for pair in v.as_arr().ok_or_else(|| bad("histogram: expected array"))? {
            let pair = pair.as_arr().ok_or_else(|| bad("histogram: bad pair"))?;
            let (i, c) = match pair {
                [i, c] => (
                    i.as_u64().ok_or_else(|| bad("histogram: bad index"))?,
                    c.as_u64().ok_or_else(|| bad("histogram: bad count"))?,
                ),
                _ => return Err(bad("histogram: bad pair")),
            };
            if i as usize >= h.buckets.len() {
                return Err(bad("histogram: index out of range"));
            }
            h.buckets[i as usize] = c;
        }
        Ok(h)
    }
}

/// Counters for one [`CheckKind`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckCounters {
    /// Sites where the check logic ran (`Dynamic` + `Audit`).
    pub performed: u64,
    /// Sites where the check's cost was charged (`Dynamic` only).
    pub charged: u64,
    /// Sites reached in `Static` mode, where the check was elided.
    pub elided: u64,
    /// Checks that failed (raised an [`RtError`](crate::RtError)).
    pub failed: u64,
    /// Total virtual cycles charged for this kind.
    pub cycles: u64,
    /// Distribution of per-check charged cost.
    pub cost_hist: Histogram,
}

impl CheckCounters {
    /// Sites reached, regardless of mode.
    pub fn sites(&self) -> u64 {
        self.performed + self.elided
    }

    fn merge(&mut self, other: &CheckCounters) {
        self.performed += other.performed;
        self.charged += other.charged;
        self.elided += other.elided;
        self.failed += other.failed;
        self.cycles += other.cycles;
        self.cost_hist.merge(&other.cost_hist);
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("performed", Json::Int(self.performed as i64)),
            ("charged", Json::Int(self.charged as i64)),
            ("elided", Json::Int(self.elided as i64)),
            ("failed", Json::Int(self.failed as i64)),
            ("cycles", Json::Int(self.cycles as i64)),
            ("cost_hist", self.cost_hist.to_json()),
        ])
    }

    fn from_json(v: &Json) -> Result<CheckCounters, JsonError> {
        Ok(CheckCounters {
            performed: field_u64(v, "performed")?,
            charged: field_u64(v, "charged")?,
            elided: field_u64(v, "elided")?,
            failed: field_u64(v, "failed")?,
            cycles: field_u64(v, "cycles")?,
            cost_hist: Histogram::from_json(
                v.get("cost_hist").ok_or_else(|| bad("missing cost_hist"))?,
            )?,
        })
    }
}

/// Static-checker metrics attached to a snapshot by the CLI.
///
/// Wall-clock time is deliberately excluded: snapshots must be
/// byte-identical across repeated runs and across `--jobs` settings, and
/// `cache_hits`/`threads_used` already vary with parallelism — so the
/// checker section is optional and *not* included by the library-level
/// pipeline the determinism tests cover.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckerMetrics {
    /// Classes type-checked.
    pub classes_checked: u64,
    /// Methods type-checked.
    pub methods_checked: u64,
    /// Memoization-cache hits.
    pub cache_hits: u64,
    /// Memoization-cache misses.
    pub cache_misses: u64,
    /// Worker threads used.
    pub threads_used: u64,
}

impl CheckerMetrics {
    fn merge(&mut self, other: &CheckerMetrics) {
        self.classes_checked += other.classes_checked;
        self.methods_checked += other.methods_checked;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.threads_used = self.threads_used.max(other.threads_used);
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("classes_checked", Json::Int(self.classes_checked as i64)),
            ("methods_checked", Json::Int(self.methods_checked as i64)),
            ("cache_hits", Json::Int(self.cache_hits as i64)),
            ("cache_misses", Json::Int(self.cache_misses as i64)),
            ("threads_used", Json::Int(self.threads_used as i64)),
        ])
    }

    fn from_json(v: &Json) -> Result<CheckerMetrics, JsonError> {
        Ok(CheckerMetrics {
            classes_checked: field_u64(v, "classes_checked")?,
            methods_checked: field_u64(v, "methods_checked")?,
            cache_hits: field_u64(v, "cache_hits")?,
            cache_misses: field_u64(v, "cache_misses")?,
            threads_used: field_u64(v, "threads_used")?,
        })
    }
}

/// Schema identifier written into every snapshot.
pub const METRICS_SCHEMA: &str = "rtj-metrics/v1";

/// A point-in-time export of a [`MetricsRegistry`]: plain data, mergeable
/// and serializable.
///
/// Only *virtual* quantities appear here (cycles, counts) — never wall
/// time — so two runs of the same program produce identical snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// The check mode the run used.
    pub mode: CheckMode,
    /// Final virtual time of the run, in cycles.
    pub total_cycles: u64,
    /// Per-kind check counters, indexed in [`CheckKind::ALL`] order.
    pub checks: [CheckCounters; 4],
    /// Objects allocated.
    pub objects_allocated: u64,
    /// Bytes allocated to objects.
    pub bytes_allocated: u64,
    /// Cycles spent allocating (including zeroing).
    pub alloc_cycles: u64,
    /// Regions created (including subregion instances).
    pub regions_created: u64,
    /// Subregion flushes performed.
    pub regions_flushed: u64,
    /// Regions deleted.
    pub regions_deleted: u64,
    /// Garbage collections that ran.
    pub gc_collections: u64,
    /// Total cycles of GC pause imposed on regular threads.
    pub gc_pause_cycles: u64,
    /// Threads spawned (excluding the main thread).
    pub threads_spawned: u64,
    /// Cycles real-time threads spent waiting on region bookkeeping locks.
    pub rt_lock_wait_cycles: u64,
    /// Worst single real-time lock wait, in cycles.
    pub rt_max_lock_wait: u64,
    /// Static-checker metrics, when the CLI attached them.
    pub checker: Option<CheckerMetrics>,
}

impl Default for MetricsSnapshot {
    fn default() -> Self {
        MetricsSnapshot {
            mode: CheckMode::Dynamic,
            total_cycles: 0,
            checks: Default::default(),
            objects_allocated: 0,
            bytes_allocated: 0,
            alloc_cycles: 0,
            regions_created: 0,
            regions_flushed: 0,
            regions_deleted: 0,
            gc_collections: 0,
            gc_pause_cycles: 0,
            threads_spawned: 0,
            rt_lock_wait_cycles: 0,
            rt_max_lock_wait: 0,
            checker: None,
        }
    }
}

impl MetricsSnapshot {
    /// Counters for one check kind.
    pub fn check(&self, kind: CheckKind) -> &CheckCounters {
        &self.checks[kind.index()]
    }

    /// Total checks performed across all kinds.
    pub fn checks_performed(&self) -> u64 {
        self.checks.iter().map(|c| c.performed).sum()
    }

    /// Total checks elided across all kinds.
    pub fn checks_elided(&self) -> u64 {
        self.checks.iter().map(|c| c.elided).sum()
    }

    /// Total cycles charged to checks across all kinds.
    pub fn check_cycles(&self) -> u64 {
        self.checks.iter().map(|c| c.cycles).sum()
    }

    /// Merges another snapshot into this one (counters add; maxima take
    /// the max; `total_cycles` adds, treating runs as sequential).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.total_cycles += other.total_cycles;
        for (c, o) in self.checks.iter_mut().zip(other.checks.iter()) {
            c.merge(o);
        }
        self.objects_allocated += other.objects_allocated;
        self.bytes_allocated += other.bytes_allocated;
        self.alloc_cycles += other.alloc_cycles;
        self.regions_created += other.regions_created;
        self.regions_flushed += other.regions_flushed;
        self.regions_deleted += other.regions_deleted;
        self.gc_collections += other.gc_collections;
        self.gc_pause_cycles += other.gc_pause_cycles;
        self.threads_spawned += other.threads_spawned;
        self.rt_lock_wait_cycles += other.rt_lock_wait_cycles;
        self.rt_max_lock_wait = self.rt_max_lock_wait.max(other.rt_max_lock_wait);
        if let Some(o) = &other.checker {
            self.checker
                .get_or_insert_with(CheckerMetrics::default)
                .merge(o);
        }
    }

    /// The legacy coarse view ([`Stats`]) derived from this snapshot.
    pub fn to_stats(&self) -> Stats {
        Stats {
            store_checks: self.check(CheckKind::Assignment).performed,
            load_checks: self.check(CheckKind::Reference).performed,
            check_cycles: self.check_cycles(),
            objects_allocated: self.objects_allocated,
            bytes_allocated: self.bytes_allocated,
            alloc_cycles: self.alloc_cycles,
            regions_created: self.regions_created,
            regions_flushed: self.regions_flushed,
            regions_deleted: self.regions_deleted,
            gc_collections: self.gc_collections,
            gc_pause_cycles: self.gc_pause_cycles,
            threads_spawned: self.threads_spawned,
            rt_lock_wait_cycles: self.rt_lock_wait_cycles,
            rt_max_lock_wait: self.rt_max_lock_wait,
        }
    }

    /// Serializes to the `rtj-metrics/v1` JSON document.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("schema", Json::Str(METRICS_SCHEMA.into())),
            ("mode", Json::Str(self.mode.name().into())),
            ("total_cycles", Json::Int(self.total_cycles as i64)),
            (
                "checks",
                Json::Obj(
                    CheckKind::ALL
                        .into_iter()
                        .map(|k| (k.name().to_string(), self.check(k).to_json()))
                        .collect(),
                ),
            ),
            (
                "alloc",
                Json::obj(vec![
                    ("objects", Json::Int(self.objects_allocated as i64)),
                    ("bytes", Json::Int(self.bytes_allocated as i64)),
                    ("cycles", Json::Int(self.alloc_cycles as i64)),
                ]),
            ),
            (
                "regions",
                Json::obj(vec![
                    ("created", Json::Int(self.regions_created as i64)),
                    ("flushed", Json::Int(self.regions_flushed as i64)),
                    ("deleted", Json::Int(self.regions_deleted as i64)),
                ]),
            ),
            (
                "gc",
                Json::obj(vec![
                    ("collections", Json::Int(self.gc_collections as i64)),
                    ("pause_cycles", Json::Int(self.gc_pause_cycles as i64)),
                ]),
            ),
            (
                "threads",
                Json::obj(vec![
                    ("spawned", Json::Int(self.threads_spawned as i64)),
                    (
                        "rt_lock_wait_cycles",
                        Json::Int(self.rt_lock_wait_cycles as i64),
                    ),
                    ("rt_max_lock_wait", Json::Int(self.rt_max_lock_wait as i64)),
                ]),
            ),
        ];
        if let Some(c) = &self.checker {
            pairs.push(("checker", c.to_json()));
        }
        Json::obj(pairs)
    }

    /// Parses an `rtj-metrics/v1` document.
    ///
    /// # Errors
    ///
    /// [`JsonError`] on malformed JSON, a wrong/missing `schema` tag, or
    /// missing fields.
    pub fn from_json(v: &Json) -> Result<MetricsSnapshot, JsonError> {
        match v.get("schema").and_then(Json::as_str) {
            Some(METRICS_SCHEMA) => {}
            other => {
                return Err(bad(format!(
                    "expected schema `{METRICS_SCHEMA}`, found {other:?}"
                )))
            }
        }
        let mode_name = v
            .get("mode")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing mode"))?;
        let mode =
            CheckMode::parse(mode_name).ok_or_else(|| bad(format!("bad mode `{mode_name}`")))?;
        let checks_obj = v.get("checks").ok_or_else(|| bad("missing checks"))?;
        let mut checks: [CheckCounters; 4] = Default::default();
        for kind in CheckKind::ALL {
            checks[kind.index()] = CheckCounters::from_json(
                checks_obj
                    .get(kind.name())
                    .ok_or_else(|| bad(format!("missing checks.{}", kind.name())))?,
            )?;
        }
        let alloc = v.get("alloc").ok_or_else(|| bad("missing alloc"))?;
        let regions = v.get("regions").ok_or_else(|| bad("missing regions"))?;
        let gc = v.get("gc").ok_or_else(|| bad("missing gc"))?;
        let threads = v.get("threads").ok_or_else(|| bad("missing threads"))?;
        Ok(MetricsSnapshot {
            mode,
            total_cycles: field_u64(v, "total_cycles")?,
            checks,
            objects_allocated: field_u64(alloc, "objects")?,
            bytes_allocated: field_u64(alloc, "bytes")?,
            alloc_cycles: field_u64(alloc, "cycles")?,
            regions_created: field_u64(regions, "created")?,
            regions_flushed: field_u64(regions, "flushed")?,
            regions_deleted: field_u64(regions, "deleted")?,
            gc_collections: field_u64(gc, "collections")?,
            gc_pause_cycles: field_u64(gc, "pause_cycles")?,
            threads_spawned: field_u64(threads, "spawned")?,
            rt_lock_wait_cycles: field_u64(threads, "rt_lock_wait_cycles")?,
            rt_max_lock_wait: field_u64(threads, "rt_max_lock_wait")?,
            checker: match v.get("checker") {
                Some(c) => Some(CheckerMetrics::from_json(c)?),
                None => None,
            },
        })
    }

    /// Parses a snapshot from JSON text.
    ///
    /// # Errors
    ///
    /// See [`MetricsSnapshot::from_json`].
    pub fn parse(text: &str) -> Result<MetricsSnapshot, JsonError> {
        MetricsSnapshot::from_json(&Json::parse(text)?)
    }

    /// Renders the Figure-12-style elision report `rtjc report` prints
    /// for an `rtj-metrics/v1` document: run summary, per-check-kind
    /// counter table, and the remaining platform counters.
    pub fn render_report(&self) -> String {
        let mut out = String::new();
        out += &format!("mode          : {}\n", self.mode.name());
        out += &format!("total cycles  : {}\n", self.total_cycles);
        out += &format!(
            "checks        : {} performed, {} elided, {} cycles\n",
            self.checks_performed(),
            self.checks_elided(),
            self.check_cycles()
        );
        let check_cycles = self.check_cycles();
        if check_cycles > 0 && self.total_cycles > check_cycles {
            // The paper's "Overhead" ratio, estimated from one run: what
            // this run cost relative to itself with the checks removed.
            out += &format!(
                "est. overhead : {:.2}x (total / (total - check cycles))\n",
                self.total_cycles as f64 / (self.total_cycles - check_cycles) as f64
            );
        }
        out += &format!(
            "\n{:<12} {:>10} {:>10} {:>10} {:>10} {:>12}\n",
            "check kind", "performed", "charged", "elided", "failed", "cycles"
        );
        for kind in CheckKind::ALL {
            let c = self.check(kind);
            out += &format!(
                "{:<12} {:>10} {:>10} {:>10} {:>10} {:>12}\n",
                kind.name(),
                c.performed,
                c.charged,
                c.elided,
                c.failed,
                c.cycles
            );
        }
        out += &format!(
            "\nalloc   : {} objects, {} bytes, {} cycles\n",
            self.objects_allocated, self.bytes_allocated, self.alloc_cycles
        );
        out += &format!(
            "regions : {} created, {} flushed, {} deleted\n",
            self.regions_created, self.regions_flushed, self.regions_deleted
        );
        out += &format!(
            "gc      : {} collections, {} pause cycles\n",
            self.gc_collections, self.gc_pause_cycles
        );
        out += &format!(
            "threads : {} spawned, {} rt lock-wait cycles (max {})\n",
            self.threads_spawned, self.rt_lock_wait_cycles, self.rt_max_lock_wait
        );
        if let Some(c) = &self.checker {
            out += &format!(
                "checker : {} classes, {} methods, {} cache hits / {} misses, \
                 {} threads\n",
                c.classes_checked, c.methods_checked, c.cache_hits, c.cache_misses, c.threads_used
            );
        }
        out
    }

    /// Renders the snapshot as compact JSON text.
    pub fn render(&self) -> String {
        self.to_json().render()
    }
}

/// The runtime's mutable metrics recorder.
///
/// Owned by [`Runtime`](crate::Runtime); the interpreter and CLI obtain a
/// [`MetricsSnapshot`] via
/// [`Runtime::metrics_snapshot`](crate::Runtime::metrics_snapshot).
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: MetricsSnapshot,
}

impl MetricsRegistry {
    /// Records the outcome at a dynamic-check site. `cycles` is the cost
    /// charged on the virtual clock (zero unless the outcome is
    /// [`CheckOutcome::Charged`]).
    pub fn record_check(&mut self, kind: CheckKind, outcome: CheckOutcome, cycles: u64) {
        let c = &mut self.counters.checks[kind.index()];
        match outcome {
            CheckOutcome::Charged => {
                c.performed += 1;
                c.charged += 1;
                c.cycles += cycles;
                c.cost_hist.record(cycles);
            }
            CheckOutcome::Audited => c.performed += 1,
            CheckOutcome::Elided => c.elided += 1,
        }
    }

    /// Records that a performed check failed.
    pub fn record_check_failure(&mut self, kind: CheckKind) {
        self.counters.checks[kind.index()].failed += 1;
    }

    /// Records an object allocation.
    pub fn record_alloc(&mut self, bytes: u64, cycles: u64) {
        self.counters.objects_allocated += 1;
        self.counters.bytes_allocated += bytes;
        self.counters.alloc_cycles += cycles;
    }

    /// Records `n` region creations.
    pub fn record_regions_created(&mut self, n: u64) {
        self.counters.regions_created += n;
    }

    /// Records a subregion flush.
    pub fn record_region_flushed(&mut self) {
        self.counters.regions_flushed += 1;
    }

    /// Records a region deletion.
    pub fn record_region_deleted(&mut self) {
        self.counters.regions_deleted += 1;
    }

    /// Records one garbage collection and its pause cost.
    pub fn record_gc(&mut self, pause_cycles: u64) {
        self.counters.gc_collections += 1;
        self.counters.gc_pause_cycles += pause_cycles;
    }

    /// Records a thread spawn.
    pub fn record_thread_spawned(&mut self) {
        self.counters.threads_spawned += 1;
    }

    /// Records cycles a real-time thread waited on a region lock.
    pub fn record_rt_lock_wait(&mut self, cycles: u64) {
        self.counters.rt_lock_wait_cycles += cycles;
        self.counters.rt_max_lock_wait = self.counters.rt_max_lock_wait.max(cycles);
    }

    /// Exports a snapshot stamped with the run's mode and final virtual
    /// time.
    pub fn snapshot(&self, mode: CheckMode, total_cycles: u64) -> MetricsSnapshot {
        let mut snap = self.counters.clone();
        snap.mode = mode;
        snap.total_cycles = total_cycles;
        snap
    }

    /// The legacy coarse view, derived live.
    pub fn to_stats(&self) -> Stats {
        self.counters.to_stats()
    }
}

fn bad(message: impl Into<String>) -> JsonError {
    JsonError {
        at: 0,
        message: message.into(),
    }
}

fn field_u64(v: &Json, key: &str) -> Result<u64, JsonError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| bad(format!("missing or non-integer field `{key}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_floor(0), 0);
        assert_eq!(Histogram::bucket_floor(1), 1);
        assert_eq!(Histogram::bucket_floor(6), 32);
        let mut h = Histogram::default();
        h.record(42);
        h.record(42);
        h.record(0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.buckets[Histogram::bucket_index(42)], 2);
    }

    #[test]
    fn outcomes_update_the_right_counters() {
        let mut reg = MetricsRegistry::default();
        reg.record_check(CheckKind::Assignment, CheckOutcome::Charged, 42);
        reg.record_check(CheckKind::Assignment, CheckOutcome::Audited, 0);
        reg.record_check(CheckKind::Assignment, CheckOutcome::Elided, 0);
        reg.record_check_failure(CheckKind::Assignment);
        let snap = reg.snapshot(CheckMode::Dynamic, 100);
        let c = snap.check(CheckKind::Assignment);
        assert_eq!(c.performed, 2);
        assert_eq!(c.charged, 1);
        assert_eq!(c.elided, 1);
        assert_eq!(c.failed, 1);
        assert_eq!(c.cycles, 42);
        assert_eq!(c.sites(), 3);
        assert_eq!(c.cost_hist.count(), 1);
    }

    #[test]
    fn stats_view_matches_legacy_fields() {
        let mut reg = MetricsRegistry::default();
        reg.record_check(CheckKind::Assignment, CheckOutcome::Charged, 42);
        reg.record_check(CheckKind::Reference, CheckOutcome::Charged, 10);
        reg.record_alloc(24, 7);
        reg.record_thread_spawned();
        let stats = reg.to_stats();
        assert_eq!(stats.store_checks, 1);
        assert_eq!(stats.load_checks, 1);
        assert_eq!(stats.check_cycles, 52);
        assert_eq!(stats.objects_allocated, 1);
        assert_eq!(stats.bytes_allocated, 24);
        assert_eq!(stats.threads_spawned, 1);
    }

    #[test]
    fn snapshot_json_roundtrip() {
        let mut reg = MetricsRegistry::default();
        reg.record_check(CheckKind::Assignment, CheckOutcome::Charged, 42);
        reg.record_check(CheckKind::Reference, CheckOutcome::Elided, 0);
        reg.record_alloc(24, 7);
        reg.record_regions_created(3);
        reg.record_gc(50_000);
        reg.record_rt_lock_wait(123);
        let mut snap = reg.snapshot(CheckMode::Dynamic, 999);
        snap.checker = Some(CheckerMetrics {
            classes_checked: 5,
            methods_checked: 17,
            cache_hits: 4,
            cache_misses: 13,
            threads_used: 2,
        });
        let text = snap.render();
        let back = MetricsSnapshot::parse(&text).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.render(), text, "rendering is stable");
    }

    #[test]
    fn snapshot_rejects_wrong_schema() {
        assert!(MetricsSnapshot::parse("{\"schema\":\"other/v9\"}").is_err());
        assert!(MetricsSnapshot::parse("not json").is_err());
    }

    #[test]
    fn merge_adds_counters_and_maxes_maxima() {
        let mut a = MetricsRegistry::default();
        a.record_check(CheckKind::Assignment, CheckOutcome::Charged, 42);
        a.record_rt_lock_wait(100);
        let mut b = MetricsRegistry::default();
        b.record_check(CheckKind::Assignment, CheckOutcome::Charged, 42);
        b.record_rt_lock_wait(700);
        let mut merged = a.snapshot(CheckMode::Dynamic, 10);
        merged.merge(&b.snapshot(CheckMode::Dynamic, 20));
        assert_eq!(merged.total_cycles, 30);
        assert_eq!(merged.check(CheckKind::Assignment).performed, 2);
        assert_eq!(merged.check(CheckKind::Assignment).cycles, 84);
        assert_eq!(merged.rt_max_lock_wait, 700);
        assert_eq!(merged.rt_lock_wait_cycles, 800);
    }

    #[test]
    fn report_lists_every_kind_and_the_overhead_estimate() {
        let mut reg = MetricsRegistry::default();
        reg.record_check(CheckKind::Assignment, CheckOutcome::Charged, 40);
        reg.record_check(CheckKind::Reference, CheckOutcome::Charged, 10);
        let report = reg.snapshot(CheckMode::Dynamic, 100).render_report();
        for kind in CheckKind::ALL {
            assert!(report.contains(kind.name()), "missing {}", kind.name());
        }
        assert!(report.contains("2 performed, 0 elided, 50 cycles"));
        assert!(report.contains("est. overhead : 2.00x"), "{report}");
    }

    #[test]
    fn kind_names_roundtrip() {
        for k in CheckKind::ALL {
            assert_eq!(CheckKind::parse(k.name()), Some(k));
        }
        assert_eq!(CheckKind::parse("bogus"), None);
    }
}
