//! Ownership/outlives visualization (the paper's Figure 6).
//!
//! Renders the runtime's ownership relation as Graphviz DOT: regions as
//! boxes, objects as ellipses, **solid** edges from owner to owned
//! (`x ≽ₒ y`), **dashed** edges from a region to each region it outlives
//! — the same drawing conventions as the paper's Figure 6.

use crate::region::{RegionClass, RegionState};
use crate::runtime::Runtime;
use crate::value::RuntimeOwner;
use std::fmt::Write as _;

impl Runtime {
    /// Emits the current ownership and outlives relations as DOT.
    ///
    /// Dead objects and deleted regions are drawn greyed-out, so a
    /// post-run snapshot still shows the full story of the execution.
    pub fn ownership_dot(&self) -> String {
        let mut out = String::from(
            "digraph ownership {\n\
             \trankdir=TB;\n\
             \tnode [fontname=\"Helvetica\"];\n\
             \t// regions: boxes; objects: ellipses;\n\
             \t// solid edge: owner -> owned; dashed edge: outlives.\n",
        );
        // Regions.
        let mut region_ids = Vec::new();
        for i in 0.. {
            if i as usize >= self.region_table_len() {
                break;
            }
            region_ids.push(crate::value::RegionId(i));
        }
        for &r in &region_ids {
            let rec = self.region(r);
            let label = match &rec.class {
                RegionClass::Heap => "heap".to_string(),
                RegionClass::Immortal => "immortal".to_string(),
                RegionClass::Local { .. } => format!("local r{}", r.0),
                RegionClass::Shared => format!(
                    "{} r{}",
                    rec.spec.kind_name.as_deref().unwrap_or("shared"),
                    r.0
                ),
                RegionClass::SubInstance { member, .. } => {
                    format!("sub {member} r{} (gen {})", r.0, rec.generation)
                }
            };
            let style = match rec.state {
                RegionState::Alive => "solid",
                RegionState::Flushed => "dotted",
                RegionState::Deleted => "dotted\", color=\"gray",
            };
            let _ = writeln!(
                out,
                "\tr{} [shape=box, style=\"{style}\", label=\"{label}\"];",
                r.0
            );
        }
        // Outlives edges (transitively reduced to the recorded facts).
        for &r in &region_ids {
            let rec = self.region(r);
            for &longer in &rec.outlived_by {
                let _ = writeln!(
                    out,
                    "\tr{} -> r{} [style=dashed, constraint=false];",
                    longer.0, r.0
                );
            }
        }
        // Objects and ownership edges.
        for idx in 0..self.objects().total_allocated() {
            let obj = self.object(crate::value::ObjId(idx as u32));
            let style = if obj.alive { "solid" } else { "dotted" };
            let _ = writeln!(
                out,
                "\to{} [shape=ellipse, style=\"{style}\", label=\"{}#{}\"];",
                obj.id.0, obj.class_name, obj.id.0
            );
            match obj.owners.first() {
                Some(RuntimeOwner::Region(r)) => {
                    let _ = writeln!(out, "\tr{} -> o{};", r.0, obj.id.0);
                }
                Some(RuntimeOwner::Object(o)) => {
                    let _ = writeln!(out, "\to{} -> o{};", o.0, obj.id.0);
                }
                None => {
                    let _ = writeln!(out, "\tr{} -> o{};", obj.region.0, obj.id.0);
                }
            }
        }
        out.push_str("}\n");
        out
    }

    /// Number of region records (including dead ones), for snapshotting.
    pub fn region_table_len(&self) -> usize {
        self.regions_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks::CheckMode;
    use crate::region::RegionSpec;

    #[test]
    fn dot_contains_regions_objects_and_edges() {
        let mut rt = Runtime::with_mode(CheckMode::Dynamic);
        let t = rt.main_thread();
        let r = rt.create_region(t, RegionSpec::plain_vt(), false).unwrap();
        let owner_obj = rt
            .alloc(
                t,
                RuntimeOwner::Region(r),
                "Stack",
                vec![RuntimeOwner::Region(r)],
                1,
            )
            .unwrap();
        let owned = rt
            .alloc(
                t,
                RuntimeOwner::Object(owner_obj),
                "Node",
                vec![RuntimeOwner::Object(owner_obj)],
                1,
            )
            .unwrap();
        let dot = rt.ownership_dot();
        assert!(dot.contains("digraph ownership"));
        assert!(dot.contains("heap"));
        assert!(dot.contains("immortal"));
        assert!(dot.contains(&format!("Stack#{}", owner_obj.0)));
        // Region owns the stack; the stack owns the node.
        assert!(dot.contains(&format!("r{} -> o{};", r.0, owner_obj.0)));
        assert!(dot.contains(&format!("o{} -> o{};", owner_obj.0, owned.0)));
        // heap outlives the local region (dashed).
        assert!(dot.contains(&format!("r0 -> r{} [style=dashed", r.0)));
    }

    #[test]
    fn dead_objects_are_dotted() {
        let mut rt = Runtime::with_mode(CheckMode::Dynamic);
        let t = rt.main_thread();
        let r = rt.create_region(t, RegionSpec::plain_vt(), false).unwrap();
        let o = rt
            .alloc(t, RuntimeOwner::Region(r), "C", vec![], 0)
            .unwrap();
        rt.exit_created_region(t, r).unwrap();
        let dot = rt.ownership_dot();
        let line = dot
            .lines()
            .find(|l| l.contains(&format!("o{} [", o.0)))
            .unwrap();
        assert!(line.contains("dotted"), "{line}");
    }
}
