//! Runtime errors: the failures the RTSJ dynamic checks guard against,
//! plus resource exhaustion.

use crate::value::{ObjId, RegionId, ThreadId};
use std::fmt;

/// An error raised by the region runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtError {
    /// An RTSJ assignment check failed: storing a reference to an object
    /// whose region does not outlive the holder's region would create a
    /// dangling reference.
    IllegalAssignment {
        /// Region of the object holding the reference.
        holder_region: RegionId,
        /// Region of the referenced object.
        value_region: RegionId,
    },
    /// A real-time thread touched a reference to a heap-allocated object.
    HeapRefFromRealTime {
        /// The offending thread.
        thread: ThreadId,
        /// The heap object involved.
        object: ObjId,
    },
    /// A real-time thread tried to allocate memory from the garbage
    /// collected heap (object allocation, VT-region growth, or region
    /// creation).
    HeapAllocFromRealTime {
        /// The offending thread.
        thread: ThreadId,
    },
    /// An LT region ran out of its preallocated capacity.
    LtCapacityExceeded {
        /// The region.
        region: RegionId,
        /// Its fixed capacity in bytes.
        capacity: u64,
        /// The allocation size that did not fit.
        requested: u64,
    },
    /// A (flushed or deleted) region's object was touched — a dangling
    /// reference was followed. Well-typed programs never trigger this.
    DanglingReference {
        /// The dead object.
        object: ObjId,
    },
    /// An operation referred to a region that is not alive.
    RegionNotAlive {
        /// The region.
        region: RegionId,
    },
    /// A thread entered a subregion reserved for the other thread class.
    ReservationViolation {
        /// The offending thread.
        thread: ThreadId,
        /// The region with the reservation.
        region: RegionId,
    },
    /// Internal protocol misuse (e.g. exiting a region that was not
    /// entered); indicates an interpreter bug, not a program error.
    Protocol(String),
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::IllegalAssignment {
                holder_region,
                value_region,
            } => write!(
                f,
                "illegal assignment: region#{} does not outlive region#{}",
                value_region.0, holder_region.0
            ),
            RtError::HeapRefFromRealTime { thread, object } => write!(
                f,
                "real-time thread#{} accessed heap reference obj#{}",
                thread.0, object.0
            ),
            RtError::HeapAllocFromRealTime { thread } => write!(
                f,
                "real-time thread#{} attempted a heap allocation",
                thread.0
            ),
            RtError::LtCapacityExceeded {
                region,
                capacity,
                requested,
            } => write!(
                f,
                "LT region#{} capacity exceeded ({requested} bytes requested, \
                 {capacity} total)",
                region.0
            ),
            RtError::DanglingReference { object } => {
                write!(f, "dangling reference followed to dead obj#{}", object.0)
            }
            RtError::RegionNotAlive { region } => {
                write!(f, "region#{} is not alive", region.0)
            }
            RtError::ReservationViolation { thread, region } => write!(
                f,
                "thread#{} entered region#{} reserved for the other thread class",
                thread.0, region.0
            ),
            RtError::Protocol(msg) => write!(f, "runtime protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for RtError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RtError::IllegalAssignment {
            holder_region: RegionId(1),
            value_region: RegionId(2),
        };
        assert!(e.to_string().contains("region#2"));
        let e = RtError::LtCapacityExceeded {
            region: RegionId(3),
            capacity: 64,
            requested: 128,
        };
        assert!(e.to_string().contains("128 bytes"));
    }
}
