//! Runtime values and identifiers.

use std::fmt;

/// Identifies an allocated object in the object store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u32);

/// Identifies a memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u32);

/// Identifies a thread known to the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub u32);

/// A runtime value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// The null reference (also the initial value of reference fields).
    #[default]
    Null,
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A reference to an object.
    Ref(ObjId),
    /// A region handle.
    Handle(RegionId),
    /// A string (only produced by string literals, only consumed by
    /// `print`).
    Str(String),
}

impl Value {
    /// Whether this value is an object reference (not null).
    pub fn as_ref_id(&self) -> Option<ObjId> {
        match self {
            Value::Ref(o) => Some(*o),
            _ => None,
        }
    }

    /// The integer inside, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean inside, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Ref(o) => write!(f, "obj#{}", o.0),
            Value::Handle(r) => write!(f, "region#{}", r.0),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

/// The runtime counterpart of a static owner: the region an object is
/// allocated in is determined by the first of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuntimeOwner {
    /// Owned directly by a region.
    Region(RegionId),
    /// Owned by another object (and therefore allocated in that object's
    /// region).
    Object(ObjId),
}

/// Which scheduling class a thread belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadClass {
    /// An ordinary thread: may use the heap, is paused by the garbage
    /// collector.
    Regular,
    /// A real-time (`NoHeapRealtimeThread`-like) thread: never paused by
    /// the collector, must never touch heap references.
    RealTime,
}

/// Region allocation policy (runtime counterpart of the paper's
/// `LT(size)` / `VT`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AllocPolicy {
    /// Linear-time: `capacity` bytes preallocated at region creation;
    /// object allocation slides a pointer and zeroes the object.
    Lt {
        /// Preallocated capacity in bytes.
        capacity: u64,
    },
    /// Variable-time: memory is acquired on demand in chunks.
    #[default]
    Vt,
}

/// Reservation tag for subregions (Section 2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Reservation {
    /// Usable by any thread (top-level regions).
    #[default]
    Any,
    /// Only real-time threads may enter.
    RtOnly,
    /// Only regular threads may enter.
    NoRtOnly,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Ref(ObjId(3)).as_ref_id(), Some(ObjId(3)));
        assert_eq!(Value::Null.as_ref_id(), None);
        assert_eq!(Value::Null.as_int(), None);
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::Ref(ObjId(1)).to_string(), "obj#1");
        assert_eq!(Value::Handle(RegionId(2)).to_string(), "region#2");
    }

    #[test]
    fn default_is_null() {
        assert_eq!(Value::default(), Value::Null);
    }
}
