//! Simulated RTSJ platform: region-based memory management with LT/VT
//! allocation policies, shared regions with reference counts, subregions
//! with portal fields, the RTSJ dynamic checks, a virtual clock with a
//! calibrated cost model, and a stop-the-world collector that pauses only
//! regular threads.
//!
//! This crate is the *substrate* the paper's evaluation runs on: the
//! authors measured their benchmarks on an RTSJ implementation with the
//! dynamic checks switched on and off; here the same comparison is
//! [`CheckMode::Dynamic`] vs [`CheckMode::Static`], and
//! [`CheckMode::Audit`] verifies at zero cost that well-typed programs
//! never fail a check (Theorems 3 and 4).
//!
//! The observability layer lives in [`events`] (typed [`TraceEvent`]s
//! through a pluggable, zero-cost-when-disabled [`TraceSink`]) and
//! [`metrics`] (the per-check-kind [`MetricsRegistry`] with elision
//! accounting, exported as mergeable `rtj-metrics/v1`
//! [`MetricsSnapshot`]s).
//!
//! # Example
//!
//! ```
//! use rtj_runtime::{CheckMode, RegionSpec, Runtime, RuntimeOwner, Value};
//!
//! let mut rt = Runtime::with_mode(CheckMode::Dynamic);
//! let main = rt.main_thread();
//! let region = rt.create_region(main, RegionSpec::plain_vt(), false)?;
//! let obj = rt.alloc(main, RuntimeOwner::Region(region), "Cell", vec![], 1)?;
//! rt.store_field(main, obj, 0, Value::Int(42))?;
//! assert_eq!(rt.load_field(main, obj, 0)?, Value::Int(42));
//! rt.exit_created_region(main, region)?;
//! assert!(!rt.object(obj).alive); // deleted with its region
//! # Ok::<(), rtj_runtime::RtError>(())
//! ```

#![warn(missing_docs)]

pub mod checks;
pub mod clock;
pub mod error;
pub mod events;
pub mod metrics;
pub mod objects;
pub mod region;
pub mod runtime;
pub mod value;
pub mod viz;

pub use checks::{CheckMode, Stats};
pub use clock::{Clock, CostModel};
pub use error::RtError;
pub use events::{JsonlSink, RingSink, TraceEvent, TraceSink};
pub use metrics::{
    CheckCounters, CheckKind, CheckOutcome, CheckerMetrics, Histogram, MetricsRegistry,
    MetricsSnapshot, METRICS_SCHEMA,
};
pub use objects::{object_size, FieldStorage, ObjectRecord, ObjectStore};
pub use region::{RegionClass, RegionRecord, RegionSpec, RegionState, RegionTable};
/// Shared dependency-free JSON plumbing (re-exported from `rtj-lang`, where
/// it also serves the static checker's snapshots).
pub use rtj_lang::json;
pub use rtj_lang::json::{Json, JsonError};
pub use runtime::{GcState, Runtime, ThreadRecord};
pub use value::{
    AllocPolicy, ObjId, RegionId, Reservation, RuntimeOwner, ThreadClass, ThreadId, Value,
};
