//! The object store.
//!
//! Objects live in regions; deleting or flushing a region kills its
//! objects. A dead object's fields are dropped, and any later access to it
//! is a [dangling-reference error](crate::error::RtError::DanglingReference)
//! — which well-typed programs never trigger (paper, Theorem 3).
//!
//! Field slots come in two flavours: `VT` objects own a boxed `Vec<Value>`
//! each, while objects in `LT` regions borrow a contiguous span of the
//! region's bump arena ([`FieldStorage::Arena`]) so allocation is a
//! pointer slide and region exit resets the whole arena in O(1).

use crate::value::{ObjId, RegionId, RuntimeOwner, Value};
use rtj_lang::Symbol;

/// Object header bytes (class pointer + owner table, as on the authors'
/// platform).
pub const OBJECT_HEADER_BYTES: u64 = 16;

/// Bytes per field slot.
pub const FIELD_BYTES: u64 = 8;

/// Size in bytes of an object with `n_fields` fields.
pub fn object_size(n_fields: usize) -> u64 {
    OBJECT_HEADER_BYTES + FIELD_BYTES * n_fields as u64
}

/// Where an object's field slots live.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldStorage {
    /// A per-object vector (VT regions, heap).
    Boxed(Vec<Value>),
    /// A span of the owning LT region's bump arena:
    /// `region.arena[base..base + len]`.
    Arena {
        /// First slot index in the region arena.
        base: u32,
        /// Number of field slots.
        len: u32,
    },
}

impl FieldStorage {
    /// Number of field slots.
    pub fn len(&self) -> usize {
        match self {
            FieldStorage::Boxed(v) => v.len(),
            FieldStorage::Arena { len, .. } => *len as usize,
        }
    }

    /// Whether the object has no fields.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One allocated object.
#[derive(Debug, Clone)]
pub struct ObjectRecord {
    /// The object's id.
    pub id: ObjId,
    /// Name of the class it was allocated as (interned).
    pub class_name: Symbol,
    /// The region it is allocated in.
    pub region: RegionId,
    /// Runtime owner bindings (one per owner parameter of the class).
    pub owners: Vec<RuntimeOwner>,
    /// Field slots, in class layout order (boxed or arena-backed).
    pub storage: FieldStorage,
    /// Dead once the containing region is flushed or deleted.
    pub alive: bool,
}

/// The store of all objects ever allocated.
#[derive(Debug, Clone, Default)]
pub struct ObjectStore {
    records: Vec<ObjectRecord>,
    live_count: usize,
    live_bytes: u64,
    peak_live_bytes: u64,
}

impl ObjectStore {
    /// Allocates a new object record with boxed field slots (memory
    /// accounting is the region table's job; this tracks object-level
    /// liveness).
    pub fn alloc(
        &mut self,
        class_name: impl Into<Symbol>,
        region: RegionId,
        owners: Vec<RuntimeOwner>,
        n_fields: usize,
    ) -> ObjId {
        self.alloc_with(
            class_name.into(),
            region,
            owners,
            FieldStorage::Boxed(vec![Value::Null; n_fields]),
        )
    }

    /// Allocates a new object record whose field slots live in the owning
    /// LT region's arena at `[base, base + len)`.
    pub fn alloc_in_arena(
        &mut self,
        class_name: impl Into<Symbol>,
        region: RegionId,
        owners: Vec<RuntimeOwner>,
        base: u32,
        len: u32,
    ) -> ObjId {
        self.alloc_with(
            class_name.into(),
            region,
            owners,
            FieldStorage::Arena { base, len },
        )
    }

    fn alloc_with(
        &mut self,
        class_name: Symbol,
        region: RegionId,
        owners: Vec<RuntimeOwner>,
        storage: FieldStorage,
    ) -> ObjId {
        let id = ObjId(self.records.len() as u32);
        let n_fields = storage.len();
        self.records.push(ObjectRecord {
            id,
            class_name,
            region,
            owners,
            storage,
            alive: true,
        });
        self.live_count += 1;
        self.live_bytes += object_size(n_fields);
        self.peak_live_bytes = self.peak_live_bytes.max(self.live_bytes);
        id
    }

    /// Immutable access (dead or alive).
    pub fn get(&self, id: ObjId) -> &ObjectRecord {
        &self.records[id.0 as usize]
    }

    /// Mutable access (dead or alive).
    pub fn get_mut(&mut self, id: ObjId) -> &mut ObjectRecord {
        &mut self.records[id.0 as usize]
    }

    /// Kills an object (its region was flushed or deleted). Arena-backed
    /// slots are abandoned in place — the region resets its arena
    /// separately, in O(1).
    pub fn kill(&mut self, id: ObjId) {
        let n_fields = {
            let r = &mut self.records[id.0 as usize];
            if !r.alive {
                return;
            }
            r.alive = false;
            let n = r.storage.len();
            r.storage = FieldStorage::Boxed(Vec::new());
            n
        };
        self.live_count -= 1;
        self.live_bytes -= object_size(n_fields);
    }

    /// Number of live objects.
    pub fn live_count(&self) -> usize {
        self.live_count
    }

    /// Bytes held by live objects.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// High-water mark of live bytes.
    pub fn peak_live_bytes(&self) -> u64 {
        self.peak_live_bytes
    }

    /// Total number of objects ever allocated.
    pub fn total_allocated(&self) -> usize {
        self.records.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_kill_track_liveness() {
        let mut s = ObjectStore::default();
        let a = s.alloc("A", RegionId(0), vec![], 2);
        let b = s.alloc("B", RegionId(0), vec![], 0);
        assert_eq!(s.live_count(), 2);
        assert_eq!(s.live_bytes(), object_size(2) + object_size(0));
        assert_eq!(s.peak_live_bytes(), s.live_bytes());
        let peak = s.peak_live_bytes();
        s.kill(a);
        assert!(!s.get(a).alive);
        assert!(s.get(b).alive);
        assert_eq!(s.live_count(), 1);
        assert_eq!(s.peak_live_bytes(), peak, "peak unchanged by kill");
        s.kill(a); // idempotent
        assert_eq!(s.live_count(), 1);
        assert_eq!(s.total_allocated(), 2);
    }

    #[test]
    fn fields_start_null() {
        let mut s = ObjectStore::default();
        let a = s.alloc("A", RegionId(1), vec![], 3);
        match &s.get(a).storage {
            FieldStorage::Boxed(fields) => {
                assert!(fields.iter().all(|v| *v == Value::Null));
            }
            other => panic!("expected boxed storage, got {other:?}"),
        }
        assert_eq!(s.get(a).region, RegionId(1));
    }

    #[test]
    fn arena_objects_account_like_boxed_ones() {
        let mut s = ObjectStore::default();
        let a = s.alloc_in_arena("A", RegionId(2), vec![], 0, 3);
        assert_eq!(s.get(a).storage, FieldStorage::Arena { base: 0, len: 3 });
        assert_eq!(s.live_bytes(), object_size(3));
        s.kill(a);
        assert_eq!(s.live_bytes(), 0);
        assert_eq!(s.get(a).storage, FieldStorage::Boxed(Vec::new()));
    }

    #[test]
    fn object_size_formula() {
        assert_eq!(object_size(0), 16);
        assert_eq!(object_size(4), 48);
    }
}
