//! The object store.
//!
//! Objects live in regions; deleting or flushing a region kills its
//! objects. A dead object's fields are dropped, and any later access to it
//! is a [dangling-reference error](crate::error::RtError::DanglingReference)
//! — which well-typed programs never trigger (paper, Theorem 3).

use crate::value::{ObjId, RegionId, RuntimeOwner, Value};

/// Object header bytes (class pointer + owner table, as on the authors'
/// platform).
pub const OBJECT_HEADER_BYTES: u64 = 16;

/// Bytes per field slot.
pub const FIELD_BYTES: u64 = 8;

/// Size in bytes of an object with `n_fields` fields.
pub fn object_size(n_fields: usize) -> u64 {
    OBJECT_HEADER_BYTES + FIELD_BYTES * n_fields as u64
}

/// One allocated object.
#[derive(Debug, Clone)]
pub struct ObjectRecord {
    /// The object's id.
    pub id: ObjId,
    /// Name of the class it was allocated as.
    pub class_name: String,
    /// The region it is allocated in.
    pub region: RegionId,
    /// Runtime owner bindings (one per owner parameter of the class).
    pub owners: Vec<RuntimeOwner>,
    /// Field slots, in class layout order.
    pub fields: Vec<Value>,
    /// Dead once the containing region is flushed or deleted.
    pub alive: bool,
}

/// The store of all objects ever allocated.
#[derive(Debug, Clone, Default)]
pub struct ObjectStore {
    records: Vec<ObjectRecord>,
    live_count: usize,
    live_bytes: u64,
    peak_live_bytes: u64,
}

impl ObjectStore {
    /// Allocates a new object record (memory accounting is the region
    /// table's job; this tracks object-level liveness).
    pub fn alloc(
        &mut self,
        class_name: String,
        region: RegionId,
        owners: Vec<RuntimeOwner>,
        n_fields: usize,
    ) -> ObjId {
        let id = ObjId(self.records.len() as u32);
        self.records.push(ObjectRecord {
            id,
            class_name,
            region,
            owners,
            fields: vec![Value::Null; n_fields],
            alive: true,
        });
        self.live_count += 1;
        self.live_bytes += object_size(n_fields);
        self.peak_live_bytes = self.peak_live_bytes.max(self.live_bytes);
        id
    }

    /// Immutable access (dead or alive).
    pub fn get(&self, id: ObjId) -> &ObjectRecord {
        &self.records[id.0 as usize]
    }

    /// Mutable access (dead or alive).
    pub fn get_mut(&mut self, id: ObjId) -> &mut ObjectRecord {
        &mut self.records[id.0 as usize]
    }

    /// Kills an object (its region was flushed or deleted).
    pub fn kill(&mut self, id: ObjId) {
        let n_fields = {
            let r = &mut self.records[id.0 as usize];
            if !r.alive {
                return;
            }
            r.alive = false;
            let n = r.fields.len();
            r.fields = Vec::new();
            n
        };
        self.live_count -= 1;
        self.live_bytes -= object_size(n_fields);
    }

    /// Number of live objects.
    pub fn live_count(&self) -> usize {
        self.live_count
    }

    /// Bytes held by live objects.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// High-water mark of live bytes.
    pub fn peak_live_bytes(&self) -> u64 {
        self.peak_live_bytes
    }

    /// Total number of objects ever allocated.
    pub fn total_allocated(&self) -> usize {
        self.records.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_kill_track_liveness() {
        let mut s = ObjectStore::default();
        let a = s.alloc("A".into(), RegionId(0), vec![], 2);
        let b = s.alloc("B".into(), RegionId(0), vec![], 0);
        assert_eq!(s.live_count(), 2);
        assert_eq!(s.live_bytes(), object_size(2) + object_size(0));
        assert_eq!(s.peak_live_bytes(), s.live_bytes());
        let peak = s.peak_live_bytes();
        s.kill(a);
        assert!(!s.get(a).alive);
        assert!(s.get(b).alive);
        assert_eq!(s.live_count(), 1);
        assert_eq!(s.peak_live_bytes(), peak, "peak unchanged by kill");
        s.kill(a); // idempotent
        assert_eq!(s.live_count(), 1);
        assert_eq!(s.total_allocated(), 2);
    }

    #[test]
    fn fields_start_null() {
        let mut s = ObjectStore::default();
        let a = s.alloc("A".into(), RegionId(1), vec![], 3);
        assert!(s.get(a).fields.iter().all(|v| *v == Value::Null));
        assert_eq!(s.get(a).region, RegionId(1));
    }

    #[test]
    fn object_size_formula() {
        assert_eq!(object_size(0), 16);
        assert_eq!(object_size(4), 48);
    }
}
