//! Virtual clock and the cost model.
//!
//! All costs are in abstract *cycles*. The model mirrors the cost structure
//! of the authors' RTSJ platform: LT allocation is linear in object size
//! (pointer slide + zeroing), VT allocation pays an extra variable-cost
//! component when a fresh chunk is needed, heap allocation is the most
//! expensive (and accrues garbage-collector debt), and the RTSJ dynamic
//! checks add a fixed cost to every checked reference load/store.

/// Cycle costs for the simulated platform. All fields are public so
/// experiments can ablate individual costs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Cost of a basic interpreter step (arithmetic, variable access).
    pub step: u64,
    /// Cost of an (unchecked) field load or store.
    pub field_access: u64,
    /// RTSJ assignment check on a reference store (scope-stack walk).
    pub store_check: u64,
    /// RTSJ reference check on a reference load by a real-time thread /
    /// heap-reference test.
    pub load_check: u64,
    /// Fixed part of any allocation.
    pub alloc_base: u64,
    /// Per-8-bytes zeroing cost (applies to every allocation: all bytes
    /// are zeroed).
    pub zero_per_word: u64,
    /// Extra cost when a VT region must grab a fresh chunk.
    pub vt_chunk: u64,
    /// VT chunk size in bytes.
    pub vt_chunk_bytes: u64,
    /// Extra cost of a heap allocation (synchronization with the GC).
    pub heap_alloc: u64,
    /// Cost of creating a region (bookkeeping; LT adds zeroed capacity).
    pub region_create: u64,
    /// Cost of entering or exiting a (shared) region, including the
    /// reference-count critical section.
    pub region_enter_exit: u64,
    /// Cost of a method call frame.
    pub call: u64,
    /// Garbage collector: bytes of heap allocation that trigger one
    /// collection.
    pub gc_threshold_bytes: u64,
    /// Garbage collector: pause length in cycles per collection.
    pub gc_pause: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            step: 1,
            field_access: 1,
            store_check: 42,
            load_check: 10,
            alloc_base: 24,
            zero_per_word: 1,
            vt_chunk: 160,
            vt_chunk_bytes: 4096,
            heap_alloc: 40,
            region_create: 60,
            region_enter_exit: 12,
            call: 4,
            gc_threshold_bytes: 1 << 20,
            gc_pause: 200_000,
        }
    }
}

impl CostModel {
    /// The zeroing cost for `bytes` bytes.
    pub fn zeroing(&self, bytes: u64) -> u64 {
        self.zero_per_word * bytes.div_ceil(8)
    }
}

/// A monotone virtual clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Clock {
    now: u64,
}

impl Clock {
    /// Creates a clock at cycle 0.
    pub fn new() -> Self {
        Clock::default()
    }

    /// Current cycle count.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances by `cycles`.
    pub fn advance(&mut self, cycles: u64) {
        self.now += cycles;
    }

    /// Advances the clock to at least `target`.
    pub fn advance_to(&mut self, target: u64) {
        self.now = self.now.max(target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let mut c = Clock::new();
        assert_eq!(c.now(), 0);
        c.advance(10);
        assert_eq!(c.now(), 10);
        c.advance_to(5);
        assert_eq!(c.now(), 10, "advance_to never goes backwards");
        c.advance_to(25);
        assert_eq!(c.now(), 25);
    }

    #[test]
    fn zeroing_rounds_up_to_words() {
        let m = CostModel::default();
        assert_eq!(m.zeroing(0), 0);
        assert_eq!(m.zeroing(1), 1);
        assert_eq!(m.zeroing(8), 1);
        assert_eq!(m.zeroing(9), 2);
        assert_eq!(m.zeroing(64), 8);
    }
}
