//! Region records and the region table.
//!
//! Regions come in four classes: the garbage-collected **heap**, the
//! **immortal** region, lexically scoped thread-local **local** regions,
//! and **shared** regions (with reference counts and subregion instances).
//! Subregion *instances* are created eagerly when their parent is created,
//! so LT memory can be preallocated transitively, as the paper requires.

use crate::value::{AllocPolicy, ObjId, RegionId, Reservation, ThreadId, Value};
use std::collections::{BTreeMap, BTreeSet};

/// A static description of a region to create: its kind, policy,
/// reservation, portal fields, and subregion members (recursively).
/// The interpreter derives this from the `regionKind` declarations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RegionSpec {
    /// Region-kind name (`None` for plain `SharedRegion` / local regions).
    pub kind_name: Option<String>,
    /// Allocation policy.
    pub policy: AllocPolicy,
    /// Which thread class may enter (subregions only).
    pub reservation: Reservation,
    /// Portal field names (initialized to `null`).
    pub portals: Vec<String>,
    /// Subregion members: `(member name, spec)`.
    pub subregions: Vec<(String, RegionSpec)>,
}

impl RegionSpec {
    /// A plain VT region with no kind, portals, or subregions.
    pub fn plain_vt() -> Self {
        RegionSpec::default()
    }

    /// Total preallocated (LT) bytes of this region and all transitive
    /// subregions — the memory reserved at creation time.
    pub fn transitive_lt_bytes(&self) -> u64 {
        let own = match self.policy {
            AllocPolicy::Lt { capacity } => capacity,
            AllocPolicy::Vt => 0,
        };
        own + self
            .subregions
            .iter()
            .map(|(_, s)| s.transitive_lt_bytes())
            .sum::<u64>()
    }
}

/// What kind of region a record is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegionClass {
    /// The garbage-collected heap.
    Heap,
    /// The immortal region.
    Immortal,
    /// A lexically scoped, thread-local region.
    Local {
        /// The thread that created it.
        owner: ThreadId,
    },
    /// A top-level shared region (reference counted).
    Shared,
    /// An instance of a declared subregion member.
    SubInstance {
        /// The parent region.
        parent: RegionId,
        /// The member name in the parent's kind.
        member: String,
    },
}

/// Lifecycle state of a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionState {
    /// Objects may be allocated and accessed.
    Alive,
    /// Objects deleted; LT memory retained; the region can be re-entered
    /// (subregion instances only).
    Flushed,
    /// Gone for good.
    Deleted,
}

/// One region.
#[derive(Debug, Clone)]
pub struct RegionRecord {
    /// This region's id.
    pub id: RegionId,
    /// The spec it was created from.
    pub spec: RegionSpec,
    /// Heap / immortal / local / shared / subregion instance.
    pub class: RegionClass,
    /// Lifecycle state.
    pub state: RegionState,
    /// Bytes currently allocated to objects.
    pub used: u64,
    /// High-water mark of `used` over the region's whole life (including
    /// across flushes) — the basis for LT sizing advice.
    pub peak_used: u64,
    /// Bytes of memory committed (LT capacity, or VT chunks acquired).
    pub committed: u64,
    /// Number of threads currently in this region (shared regions).
    pub thread_count: u32,
    /// Portal fields.
    pub portals: BTreeMap<String, Value>,
    /// Current instance of each subregion member.
    pub subs: BTreeMap<String, RegionId>,
    /// Regions guaranteed to outlive this one (`heap`/`immortal` implicit).
    pub outlived_by: BTreeSet<RegionId>,
    /// Objects allocated here (alive ones).
    pub objects: Vec<ObjId>,
    /// Bumped every time a `new` subregion instance replaces this member.
    pub generation: u32,
    /// Entry/exit bookkeeping lock (priority-inversion modelling).
    pub lock: Option<ThreadId>,
    /// Bump arena of field slots for LT-policy regions: objects allocated
    /// here carry `FieldStorage::Arena` spans into this vector, so
    /// allocation is a pointer slide and flushing resets the whole arena
    /// in O(1) while keeping its capacity (the LT "memory retained"
    /// semantics). Empty for VT regions.
    pub arena: Vec<Value>,
}

impl RegionRecord {
    /// Whether objects can currently be allocated/accessed here.
    pub fn is_alive(&self) -> bool {
        self.state == RegionState::Alive
    }
}

/// The table of all regions.
#[derive(Debug, Clone, Default)]
pub struct RegionTable {
    records: Vec<RegionRecord>,
    /// Reusable work stack for the flush/delete cascades, so region exit
    /// does not allocate a fresh `Vec` of subregion ids per call.
    scratch: Vec<RegionId>,
}

impl RegionTable {
    /// Creates a region (and, recursively, instances of all its declared
    /// subregions). Returns the new region's id and the total number of
    /// regions created (for cost accounting).
    pub fn create(
        &mut self,
        spec: RegionSpec,
        class: RegionClass,
        outlived_by: BTreeSet<RegionId>,
    ) -> (RegionId, u32) {
        let id = RegionId(self.records.len() as u32);
        let committed = match spec.policy {
            AllocPolicy::Lt { capacity } => capacity,
            AllocPolicy::Vt => 0,
        };
        let portals = spec
            .portals
            .iter()
            .map(|n| (n.clone(), Value::Null))
            .collect();
        self.records.push(RegionRecord {
            id,
            spec: spec.clone(),
            class,
            state: RegionState::Alive,
            used: 0,
            peak_used: 0,
            committed,
            thread_count: 0,
            portals,
            subs: BTreeMap::new(),
            outlived_by,
            objects: Vec::new(),
            generation: 0,
            lock: None,
            arena: Vec::new(),
        });
        let mut created = 1;
        for (member, sub_spec) in &spec.subregions {
            let mut sub_outlives = self.records[id.0 as usize].outlived_by.clone();
            sub_outlives.insert(id);
            let (sub_id, n) = self.create(
                sub_spec.clone(),
                RegionClass::SubInstance {
                    parent: id,
                    member: member.clone(),
                },
                sub_outlives,
            );
            created += n;
            self.records[id.0 as usize]
                .subs
                .insert(member.clone(), sub_id);
        }
        (id, created)
    }

    /// Immutable access.
    pub fn get(&self, id: RegionId) -> &RegionRecord {
        &self.records[id.0 as usize]
    }

    /// Mutable access.
    pub fn get_mut(&mut self, id: RegionId) -> &mut RegionRecord {
        &mut self.records[id.0 as usize]
    }

    /// All region ids currently alive.
    pub fn alive_ids(&self) -> Vec<RegionId> {
        self.records
            .iter()
            .filter(|r| r.is_alive())
            .map(|r| r.id)
            .collect()
    }

    /// Number of records ever created.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no regions exist (never true once heap/immortal are made).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Whether `a` outlives `b` at runtime: identical, everlasting, or
    /// recorded in `b`'s outlived-by set.
    pub fn outlives(&self, a: RegionId, b: RegionId) -> bool {
        if a == b {
            return true;
        }
        let ra = self.get(a);
        if matches!(ra.class, RegionClass::Heap | RegionClass::Immortal) {
            return true;
        }
        self.get(b).outlived_by.contains(&a)
    }

    /// Whether a (sub)region can be flushed right now: no threads inside,
    /// all portals null, and every subregion instance flushable or already
    /// flushed. (Paper, "Flushing Subregions".)
    pub fn can_flush(&self, id: RegionId) -> bool {
        let r = self.get(id);
        if r.thread_count > 0 {
            return false;
        }
        if r.portals.values().any(|v| *v != Value::Null) {
            return false;
        }
        r.subs
            .values()
            .all(|s| self.get(*s).state == RegionState::Flushed || self.can_flush(*s))
    }

    /// Flushes a region: recursively flushes subregion instances, then
    /// deletes this region's objects. LT memory is retained (`committed`
    /// unchanged, arena capacity kept); VT memory is released. Returns the
    /// ids of all objects that died.
    pub fn flush(&mut self, id: RegionId) -> Vec<ObjId> {
        let mut dead = Vec::new();
        self.flush_into(id, &mut dead);
        dead
    }

    /// Allocation-free [`RegionTable::flush`]: appends the dead object ids
    /// to `dead` and reuses an internal work stack for the subregion
    /// cascade instead of collecting fresh `Vec`s.
    pub fn flush_into(&mut self, id: RegionId, dead: &mut Vec<ObjId>) {
        let mut stack = std::mem::take(&mut self.scratch);
        debug_assert!(stack.is_empty());
        stack.push(id);
        while let Some(rid) = stack.pop() {
            if rid != id && self.get(rid).state != RegionState::Alive {
                continue;
            }
            let r = self.get_mut(rid);
            dead.append(&mut r.objects);
            r.used = 0;
            if matches!(r.spec.policy, AllocPolicy::Vt) {
                r.committed = 0;
            }
            r.state = RegionState::Flushed;
            r.arena.clear(); // O(1) reset; LT capacity retained
            stack.extend(self.get(rid).subs.values().copied());
        }
        self.scratch = stack;
    }

    /// Deletes a region and all its subregion instances. Returns dead
    /// objects.
    pub fn delete(&mut self, id: RegionId) -> Vec<ObjId> {
        let mut dead = Vec::new();
        self.delete_into(id, &mut dead);
        dead
    }

    /// Allocation-free [`RegionTable::delete`]: appends the dead object ids
    /// to `dead`, reusing the internal work stack for the cascade.
    pub fn delete_into(&mut self, id: RegionId, dead: &mut Vec<ObjId>) {
        let mut stack = std::mem::take(&mut self.scratch);
        debug_assert!(stack.is_empty());
        stack.push(id);
        while let Some(rid) = stack.pop() {
            if rid != id && self.get(rid).state == RegionState::Deleted {
                continue;
            }
            let r = self.get_mut(rid);
            dead.append(&mut r.objects);
            r.used = 0;
            r.committed = 0;
            r.portals.values_mut().for_each(|v| *v = Value::Null);
            r.state = RegionState::Deleted;
            r.arena = Vec::new(); // memory released for good
            stack.extend(self.get(rid).subs.values().copied());
        }
        self.scratch = stack;
    }

    /// Revives a flushed subregion instance for re-entry (its LT memory was
    /// retained, so this is free).
    pub fn revive(&mut self, id: RegionId) {
        let r = self.get_mut(id);
        debug_assert_eq!(r.state, RegionState::Flushed);
        r.state = RegionState::Alive;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_with_sub() -> RegionSpec {
        RegionSpec {
            kind_name: Some("BufferRegion".into()),
            policy: AllocPolicy::Vt,
            reservation: Reservation::Any,
            portals: vec![],
            subregions: vec![(
                "b".into(),
                RegionSpec {
                    kind_name: Some("BufferSubRegion".into()),
                    policy: AllocPolicy::Lt { capacity: 4096 },
                    reservation: Reservation::NoRtOnly,
                    portals: vec!["f".into()],
                    subregions: vec![],
                },
            )],
        }
    }

    #[test]
    fn create_builds_sub_instances() {
        let mut t = RegionTable::default();
        let (id, n) = t.create(spec_with_sub(), RegionClass::Shared, BTreeSet::new());
        assert_eq!(n, 2);
        let sub = *t.get(id).subs.get("b").unwrap();
        assert_eq!(
            t.get(sub).class,
            RegionClass::SubInstance {
                parent: id,
                member: "b".into()
            }
        );
        assert_eq!(t.get(sub).committed, 4096, "LT memory preallocated");
        assert!(t.get(sub).outlived_by.contains(&id));
        assert!(t.outlives(id, sub));
        assert!(!t.outlives(sub, id));
    }

    #[test]
    fn transitive_lt_bytes() {
        let spec = spec_with_sub();
        assert_eq!(spec.transitive_lt_bytes(), 4096);
    }

    #[test]
    fn flush_respects_portals_and_counts() {
        let mut t = RegionTable::default();
        let (id, _) = t.create(spec_with_sub(), RegionClass::Shared, BTreeSet::new());
        let sub = *t.get(id).subs.get("b").unwrap();
        assert!(t.can_flush(sub));
        t.get_mut(sub).thread_count = 1;
        assert!(!t.can_flush(sub), "occupied");
        t.get_mut(sub).thread_count = 0;
        t.get_mut(sub).portals.insert("f".into(), Value::Int(1));
        assert!(!t.can_flush(sub), "non-null portal");
        t.get_mut(sub).portals.insert("f".into(), Value::Null);
        assert!(t.can_flush(sub));
        // Parent cannot flush if the sub is unflushable.
        t.get_mut(sub).portals.insert("f".into(), Value::Int(1));
        assert!(!t.can_flush(id));
    }

    #[test]
    fn flush_retains_lt_memory_and_kills_objects() {
        let mut t = RegionTable::default();
        let (id, _) = t.create(spec_with_sub(), RegionClass::Shared, BTreeSet::new());
        let sub = *t.get(id).subs.get("b").unwrap();
        t.get_mut(sub).objects.push(ObjId(7));
        t.get_mut(sub).used = 64;
        let dead = t.flush(sub);
        assert_eq!(dead, vec![ObjId(7)]);
        let r = t.get(sub);
        assert_eq!(r.state, RegionState::Flushed);
        assert_eq!(r.used, 0);
        assert_eq!(r.committed, 4096, "LT memory retained across flush");
        t.revive(sub);
        assert!(t.get(sub).is_alive());
    }

    #[test]
    fn flush_resets_arena_in_place_and_delete_releases_it() {
        let mut t = RegionTable::default();
        let (id, _) = t.create(spec_with_sub(), RegionClass::Shared, BTreeSet::new());
        let sub = *t.get(id).subs.get("b").unwrap();
        t.get_mut(sub).arena.extend([Value::Int(1), Value::Int(2)]);
        let cap = t.get(sub).arena.capacity();
        t.flush(sub);
        assert!(t.get(sub).arena.is_empty(), "arena reset on flush");
        assert_eq!(t.get(sub).arena.capacity(), cap, "LT memory retained");
        t.revive(sub);
        t.get_mut(sub).arena.push(Value::Int(3));
        t.delete(id);
        assert_eq!(t.get(sub).arena.capacity(), 0, "memory released on delete");
    }

    #[test]
    fn delete_cascades_to_subs() {
        let mut t = RegionTable::default();
        let (id, _) = t.create(spec_with_sub(), RegionClass::Shared, BTreeSet::new());
        let sub = *t.get(id).subs.get("b").unwrap();
        t.get_mut(id).objects.push(ObjId(1));
        t.get_mut(sub).objects.push(ObjId(2));
        let mut dead = t.delete(id);
        dead.sort();
        assert_eq!(dead, vec![ObjId(1), ObjId(2)]);
        assert_eq!(t.get(id).state, RegionState::Deleted);
        assert_eq!(t.get(sub).state, RegionState::Deleted);
        assert_eq!(t.get(sub).committed, 0, "memory released on delete");
    }

    #[test]
    fn heap_outlives_everything() {
        let mut t = RegionTable::default();
        let (heap, _) = t.create(RegionSpec::plain_vt(), RegionClass::Heap, BTreeSet::new());
        let (r, _) = t.create(
            RegionSpec::plain_vt(),
            RegionClass::Local { owner: ThreadId(0) },
            [heap].into_iter().collect(),
        );
        assert!(t.outlives(heap, r));
        assert!(!t.outlives(r, heap));
    }
}
