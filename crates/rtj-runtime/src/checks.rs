//! Check modes and runtime statistics.

/// How the RTSJ dynamic checks are handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckMode {
    /// RTSJ mode: run every reference/assignment check and charge its cost
    /// on the virtual clock. This is the baseline the paper's Figure 12
    /// measures against.
    #[default]
    Dynamic,
    /// Statically-checked mode: the program was accepted by the ownership/
    /// region type system, so the checks are elided entirely — zero cost.
    Static,
    /// Verification mode: run every check at **zero** cost and report any
    /// failure. Used by the soundness test-suite to confirm that well-typed
    /// programs never fail a check (Theorems 3 and 4).
    Audit,
}

impl CheckMode {
    /// Whether the checks' logic runs at all.
    pub fn checks_run(self) -> bool {
        !matches!(self, CheckMode::Static)
    }

    /// Whether the checks' cost is charged on the clock.
    pub fn checks_charged(self) -> bool {
        matches!(self, CheckMode::Dynamic)
    }

    /// Stable lower-case name used in metrics snapshots and reports.
    pub fn name(self) -> &'static str {
        match self {
            CheckMode::Dynamic => "dynamic",
            CheckMode::Static => "static",
            CheckMode::Audit => "audit",
        }
    }

    /// Parses a [`CheckMode::name`] back.
    pub fn parse(name: &str) -> Option<CheckMode> {
        match name {
            "dynamic" => Some(CheckMode::Dynamic),
            "static" => Some(CheckMode::Static),
            "audit" => Some(CheckMode::Audit),
            _ => None,
        }
    }
}

/// Coarse counters describing one run.
///
/// Since the observability layer landed, this is a *derived view*: the
/// source of truth is the per-check-kind
/// [`MetricsRegistry`](crate::metrics::MetricsRegistry), and
/// [`Runtime::stats`](crate::Runtime::stats) computes a `Stats` from the
/// current registry on demand. Kept for ergonomic field access and
/// backwards compatibility; new code that needs per-kind or elision
/// counts should use
/// [`Runtime::metrics_snapshot`](crate::Runtime::metrics_snapshot).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Reference-store (assignment) checks performed.
    pub store_checks: u64,
    /// Reference-load checks performed.
    pub load_checks: u64,
    /// Cycles spent in checks.
    pub check_cycles: u64,
    /// Objects allocated.
    pub objects_allocated: u64,
    /// Bytes allocated to objects.
    pub bytes_allocated: u64,
    /// Cycles spent allocating (including zeroing).
    pub alloc_cycles: u64,
    /// Regions created (including subregion instances).
    pub regions_created: u64,
    /// Subregion flushes performed.
    pub regions_flushed: u64,
    /// Regions deleted.
    pub regions_deleted: u64,
    /// Garbage collections that ran.
    pub gc_collections: u64,
    /// Total cycles of GC pause imposed on regular threads.
    pub gc_pause_cycles: u64,
    /// Threads spawned (excluding the main thread).
    pub threads_spawned: u64,
    /// Cycles real-time threads spent waiting to enter a region because a
    /// bookkeeping lock was held (the RTSJ priority-inversion window).
    pub rt_lock_wait_cycles: u64,
    /// Worst single real-time lock wait, in cycles.
    pub rt_max_lock_wait: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_predicates() {
        assert!(CheckMode::Dynamic.checks_run());
        assert!(CheckMode::Dynamic.checks_charged());
        assert!(!CheckMode::Static.checks_run());
        assert!(!CheckMode::Static.checks_charged());
        assert!(CheckMode::Audit.checks_run());
        assert!(!CheckMode::Audit.checks_charged());
    }

    #[test]
    fn mode_names_roundtrip() {
        for m in [CheckMode::Dynamic, CheckMode::Static, CheckMode::Audit] {
            assert_eq!(CheckMode::parse(m.name()), Some(m));
        }
        assert_eq!(CheckMode::parse("bogus"), None);
    }

    #[test]
    fn stats_default_is_zeroed() {
        let s = Stats::default();
        assert_eq!(s.store_checks, 0);
        assert_eq!(s.gc_collections, 0);
    }
}
