//! Structured trace events and pluggable sinks.
//!
//! When a [`TraceSink`] is installed on a
//! [`Runtime`](crate::Runtime) (via
//! [`Runtime::set_trace_sink`](crate::Runtime::set_trace_sink)), the
//! runtime emits a typed [`TraceEvent`] at every observable transition:
//! region create/enter/exit/flush/delete, object allocation, portal
//! access, thread start/stop, GC, real-time lock waits, and — the point
//! of the exercise — **every dynamic-check site**, tagged with which RTSJ
//! check fired ([`CheckKind`]), whether it was charged, audited, or
//! elided ([`CheckOutcome`]), and its virtual-clock cost.
//!
//! # Zero cost when disabled
//!
//! With no sink installed (the default), the emission paths reduce to a
//! single `Option` discriminant test; no event is constructed and no
//! string is formatted. The `trace_overhead` benchmark in `crates/bench`
//! keeps this honest.
//!
//! # Determinism
//!
//! Events carry **virtual** timestamps only ([`TraceEvent::at`] is the
//! clock's cycle count), never wall time, and the cooperative scheduler
//! serializes all runtime transitions — so the event stream for a given
//! program and seed is byte-identical across runs and across `--jobs`
//! settings. The observability test-suite asserts this.

use crate::json::Json;
use crate::metrics::{CheckKind, CheckOutcome};
use crate::value::{ObjId, RegionId, ThreadClass, ThreadId};
use std::collections::VecDeque;

fn class_name(c: ThreadClass) -> &'static str {
    match c {
        ThreadClass::Regular => "regular",
        ThreadClass::RealTime => "real_time",
    }
}

/// One observable runtime transition, stamped with virtual time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A thread began running (including threads already alive when the
    /// sink was installed).
    ThreadStart {
        /// Virtual time in cycles.
        at: u64,
        /// The thread.
        thread: ThreadId,
        /// Regular or real-time.
        class: ThreadClass,
    },
    /// A thread finished.
    ThreadStop {
        /// Virtual time in cycles.
        at: u64,
        /// The thread.
        thread: ThreadId,
    },
    /// A region (plus `count - 1` nested subregion instances) was created.
    RegionCreate {
        /// Virtual time in cycles.
        at: u64,
        /// The creating thread.
        thread: ThreadId,
        /// The new region.
        region: RegionId,
        /// Region records created (1 + nested subregions).
        count: u64,
    },
    /// A thread entered a region (pushed it on its region stack).
    RegionEnter {
        /// Virtual time in cycles.
        at: u64,
        /// The entering thread.
        thread: ThreadId,
        /// The entered region.
        region: RegionId,
        /// Whether a fresh subregion instance replaced the member.
        fresh: bool,
    },
    /// A thread exited a region.
    RegionExit {
        /// Virtual time in cycles.
        at: u64,
        /// The exiting thread.
        thread: ThreadId,
        /// The exited region.
        region: RegionId,
    },
    /// An empty subregion instance was flushed (objects freed, memory
    /// retained).
    RegionFlush {
        /// Virtual time in cycles.
        at: u64,
        /// The flushed region.
        region: RegionId,
    },
    /// A region was deleted.
    RegionDelete {
        /// Virtual time in cycles.
        at: u64,
        /// The deleted region.
        region: RegionId,
    },
    /// An object was allocated.
    Alloc {
        /// Virtual time in cycles.
        at: u64,
        /// The allocating thread.
        thread: ThreadId,
        /// The region allocated into.
        region: RegionId,
        /// The new object.
        object: ObjId,
        /// The object's class name.
        class: String,
        /// Object size in bytes (header + fields).
        bytes: u64,
        /// Allocation cost charged, in cycles.
        cycles: u64,
    },
    /// A portal field was read.
    PortalRead {
        /// Virtual time in cycles.
        at: u64,
        /// The reading thread.
        thread: ThreadId,
        /// The region whose portal was read.
        region: RegionId,
        /// The portal name.
        name: String,
    },
    /// A portal field was written.
    PortalWrite {
        /// Virtual time in cycles.
        at: u64,
        /// The writing thread.
        thread: ThreadId,
        /// The region whose portal was written.
        region: RegionId,
        /// The portal name.
        name: String,
    },
    /// A dynamic-check site was reached.
    Check {
        /// Virtual time in cycles (after the check's cost, if charged).
        at: u64,
        /// The thread that hit the site.
        thread: ThreadId,
        /// Which RTSJ check.
        kind: CheckKind,
        /// Charged, audited, or elided.
        outcome: CheckOutcome,
        /// Cost charged on the virtual clock.
        cycles: u64,
        /// `false` if the check failed (an error was raised).
        ok: bool,
    },
    /// A garbage collection started.
    Gc {
        /// Virtual time in cycles.
        at: u64,
        /// Pause imposed on regular threads, in cycles.
        pause_cycles: u64,
    },
    /// A real-time thread finished waiting on a region bookkeeping lock
    /// (the priority-inversion window).
    RtLockWait {
        /// Virtual time in cycles.
        at: u64,
        /// Cycles spent waiting.
        cycles: u64,
    },
}

impl TraceEvent {
    /// The event's virtual timestamp.
    pub fn at(&self) -> u64 {
        match self {
            TraceEvent::ThreadStart { at, .. }
            | TraceEvent::ThreadStop { at, .. }
            | TraceEvent::RegionCreate { at, .. }
            | TraceEvent::RegionEnter { at, .. }
            | TraceEvent::RegionExit { at, .. }
            | TraceEvent::RegionFlush { at, .. }
            | TraceEvent::RegionDelete { at, .. }
            | TraceEvent::Alloc { at, .. }
            | TraceEvent::PortalRead { at, .. }
            | TraceEvent::PortalWrite { at, .. }
            | TraceEvent::Check { at, .. }
            | TraceEvent::Gc { at, .. }
            | TraceEvent::RtLockWait { at, .. } => *at,
        }
    }

    /// Stable snake-case tag used as the `ev` field in JSONL.
    pub fn tag(&self) -> &'static str {
        match self {
            TraceEvent::ThreadStart { .. } => "thread_start",
            TraceEvent::ThreadStop { .. } => "thread_stop",
            TraceEvent::RegionCreate { .. } => "region_create",
            TraceEvent::RegionEnter { .. } => "region_enter",
            TraceEvent::RegionExit { .. } => "region_exit",
            TraceEvent::RegionFlush { .. } => "region_flush",
            TraceEvent::RegionDelete { .. } => "region_delete",
            TraceEvent::Alloc { .. } => "alloc",
            TraceEvent::PortalRead { .. } => "portal_read",
            TraceEvent::PortalWrite { .. } => "portal_write",
            TraceEvent::Check { .. } => "check",
            TraceEvent::Gc { .. } => "gc",
            TraceEvent::RtLockWait { .. } => "rt_lock_wait",
        }
    }

    /// Serializes the event as a JSON object (`ev` and `at` first, then
    /// the payload, in a stable field order).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("ev", Json::Str(self.tag().into())),
            ("at", Json::Int(self.at() as i64)),
        ];
        match self {
            TraceEvent::ThreadStart { thread, class, .. } => {
                pairs.push(("thread", Json::Int(thread.0 as i64)));
                pairs.push(("class", Json::Str(class_name(*class).into())));
            }
            TraceEvent::ThreadStop { thread, .. } => {
                pairs.push(("thread", Json::Int(thread.0 as i64)));
            }
            TraceEvent::RegionCreate {
                thread,
                region,
                count,
                ..
            } => {
                pairs.push(("thread", Json::Int(thread.0 as i64)));
                pairs.push(("region", Json::Int(region.0 as i64)));
                pairs.push(("count", Json::Int(*count as i64)));
            }
            TraceEvent::RegionEnter {
                thread,
                region,
                fresh,
                ..
            } => {
                pairs.push(("thread", Json::Int(thread.0 as i64)));
                pairs.push(("region", Json::Int(region.0 as i64)));
                pairs.push(("fresh", Json::Bool(*fresh)));
            }
            TraceEvent::RegionExit { thread, region, .. } => {
                pairs.push(("thread", Json::Int(thread.0 as i64)));
                pairs.push(("region", Json::Int(region.0 as i64)));
            }
            TraceEvent::RegionFlush { region, .. } | TraceEvent::RegionDelete { region, .. } => {
                pairs.push(("region", Json::Int(region.0 as i64)));
            }
            TraceEvent::Alloc {
                thread,
                region,
                object,
                class,
                bytes,
                cycles,
                ..
            } => {
                pairs.push(("thread", Json::Int(thread.0 as i64)));
                pairs.push(("region", Json::Int(region.0 as i64)));
                pairs.push(("object", Json::Int(object.0 as i64)));
                pairs.push(("class", Json::Str(class.clone())));
                pairs.push(("bytes", Json::Int(*bytes as i64)));
                pairs.push(("cycles", Json::Int(*cycles as i64)));
            }
            TraceEvent::PortalRead {
                thread,
                region,
                name,
                ..
            }
            | TraceEvent::PortalWrite {
                thread,
                region,
                name,
                ..
            } => {
                pairs.push(("thread", Json::Int(thread.0 as i64)));
                pairs.push(("region", Json::Int(region.0 as i64)));
                pairs.push(("name", Json::Str(name.clone())));
            }
            TraceEvent::Check {
                thread,
                kind,
                outcome,
                cycles,
                ok,
                ..
            } => {
                pairs.push(("thread", Json::Int(thread.0 as i64)));
                pairs.push(("kind", Json::Str(kind.name().into())));
                pairs.push(("outcome", Json::Str(outcome.name().into())));
                pairs.push(("cycles", Json::Int(*cycles as i64)));
                pairs.push(("ok", Json::Bool(*ok)));
            }
            TraceEvent::Gc { pause_cycles, .. } => {
                pairs.push(("pause_cycles", Json::Int(*pause_cycles as i64)));
            }
            TraceEvent::RtLockWait { cycles, .. } => {
                pairs.push(("cycles", Json::Int(*cycles as i64)));
            }
        }
        Json::obj(pairs)
    }

    /// Serializes the event as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        self.to_json().render()
    }
}

/// A destination for trace events.
///
/// Sinks are installed with
/// [`Runtime::set_trace_sink`](crate::Runtime::set_trace_sink) and
/// retrieved with
/// [`Runtime::take_trace_sink`](crate::Runtime::take_trace_sink). They
/// must be `Send` because the interpreter's machine shares the runtime
/// across its cooperative OS threads.
pub trait TraceSink: Send + std::fmt::Debug {
    /// Records one event. Called synchronously on the emitting thread
    /// while the runtime lock is held, so event order is the runtime's
    /// transition order.
    fn record(&mut self, event: &TraceEvent);

    /// Takes the buffered events as JSONL lines (without newlines),
    /// leaving the sink empty.
    fn drain_jsonl(&mut self) -> Vec<String>;

    /// Number of events currently buffered.
    fn len(&self) -> usize;

    /// Whether no events are buffered.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A sink that keeps every event as a pre-rendered JSONL line.
///
/// Rendering happens at record time so draining is cheap; the CLI writes
/// the drained lines to the `--trace` file after the run.
#[derive(Debug, Default)]
pub struct JsonlSink {
    lines: Vec<String>,
}

impl JsonlSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        JsonlSink::default()
    }
}

impl TraceSink for JsonlSink {
    fn record(&mut self, event: &TraceEvent) {
        self.lines.push(event.to_jsonl());
    }

    fn drain_jsonl(&mut self) -> Vec<String> {
        std::mem::take(&mut self.lines)
    }

    fn len(&self) -> usize {
        self.lines.len()
    }
}

/// A bounded sink that keeps only the most recent `capacity` events —
/// constant memory for long runs, ideal for flight-recorder debugging
/// (what led up to the failure?).
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    /// Events dropped from the front since the last drain.
    dropped: u64,
    buf: VecDeque<String>,
}

impl RingSink {
    /// Creates a ring sink holding at most `capacity` events
    /// (`capacity == 0` keeps nothing).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity,
            dropped: 0,
            buf: VecDeque::with_capacity(capacity.min(1024)),
        }
    }

    /// Events evicted since the last drain.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, event: &TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event.to_jsonl());
    }

    fn drain_jsonl(&mut self) -> Vec<String> {
        self.dropped = 0;
        self.buf.drain(..).collect()
    }

    fn len(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64) -> TraceEvent {
        TraceEvent::Check {
            at,
            thread: ThreadId(1),
            kind: CheckKind::Assignment,
            outcome: CheckOutcome::Charged,
            cycles: 42,
            ok: true,
        }
    }

    #[test]
    fn check_event_jsonl_shape() {
        let line = ev(120).to_jsonl();
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("ev").and_then(Json::as_str), Some("check"));
        assert_eq!(v.get("at").and_then(Json::as_u64), Some(120));
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("assignment"));
        assert_eq!(v.get("outcome").and_then(Json::as_str), Some("charged"));
        assert_eq!(v.get("cycles").and_then(Json::as_u64), Some(42));
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn every_event_renders_valid_json_with_tag_and_time() {
        let events = vec![
            TraceEvent::ThreadStart {
                at: 0,
                thread: ThreadId(0),
                class: ThreadClass::Regular,
            },
            TraceEvent::ThreadStop {
                at: 1,
                thread: ThreadId(0),
            },
            TraceEvent::RegionCreate {
                at: 2,
                thread: ThreadId(0),
                region: RegionId(2),
                count: 2,
            },
            TraceEvent::RegionEnter {
                at: 3,
                thread: ThreadId(0),
                region: RegionId(2),
                fresh: true,
            },
            TraceEvent::RegionExit {
                at: 4,
                thread: ThreadId(0),
                region: RegionId(2),
            },
            TraceEvent::RegionFlush {
                at: 5,
                region: RegionId(3),
            },
            TraceEvent::RegionDelete {
                at: 6,
                region: RegionId(2),
            },
            TraceEvent::Alloc {
                at: 7,
                thread: ThreadId(0),
                region: RegionId(2),
                object: ObjId(5),
                class: "Frame".into(),
                bytes: 24,
                cycles: 34,
            },
            TraceEvent::PortalRead {
                at: 8,
                thread: ThreadId(1),
                region: RegionId(3),
                name: "f".into(),
            },
            TraceEvent::PortalWrite {
                at: 9,
                thread: ThreadId(1),
                region: RegionId(3),
                name: "f".into(),
            },
            ev(10),
            TraceEvent::Gc {
                at: 11,
                pause_cycles: 50_000,
            },
            TraceEvent::RtLockWait { at: 12, cycles: 7 },
        ];
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.at(), i as u64);
            let v = Json::parse(&e.to_jsonl())
                .unwrap_or_else(|err| panic!("event {} renders invalid JSON: {err}", e.tag()));
            assert_eq!(v.get("ev").and_then(Json::as_str), Some(e.tag()));
            assert_eq!(v.get("at").and_then(Json::as_u64), Some(e.at()));
        }
    }

    #[test]
    fn jsonl_sink_accumulates_and_drains() {
        let mut sink = JsonlSink::new();
        sink.record(&ev(1));
        sink.record(&ev(2));
        assert_eq!(sink.len(), 2);
        assert!(!sink.is_empty());
        let lines = sink.drain_jsonl();
        assert_eq!(lines.len(), 2);
        assert!(sink.is_empty());
    }

    #[test]
    fn ring_sink_keeps_most_recent() {
        let mut sink = RingSink::new(2);
        for at in 0..5 {
            sink.record(&ev(at));
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 3);
        let lines = sink.drain_jsonl();
        let ats: Vec<u64> = lines
            .iter()
            .map(|l| Json::parse(l).unwrap().get("at").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(ats, vec![3, 4]);
        assert_eq!(sink.dropped(), 0);
    }

    fn drained_ats(sink: &mut RingSink) -> Vec<u64> {
        sink.drain_jsonl()
            .iter()
            .map(|l| Json::parse(l).unwrap().get("at").unwrap().as_u64().unwrap())
            .collect()
    }

    #[test]
    fn ring_sink_at_exact_capacity_drops_nothing() {
        let mut sink = RingSink::new(3);
        for at in 0..3 {
            sink.record(&ev(at));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 0, "filling to capacity evicts nothing");
        assert_eq!(drained_ats(&mut sink), vec![0, 1, 2]);
    }

    #[test]
    fn ring_sink_one_past_capacity_drops_exactly_oldest() {
        let mut sink = RingSink::new(3);
        for at in 0..4 {
            sink.record(&ev(at));
        }
        assert_eq!(sink.len(), 3, "wrap-around must not grow the buffer");
        assert_eq!(sink.dropped(), 1, "exactly one eviction at capacity+1");
        assert_eq!(drained_ats(&mut sink), vec![1, 2, 3]);
        // The drain resets the eviction counter and empties the ring.
        assert_eq!(sink.len(), 0);
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn ring_sink_zero_capacity_keeps_nothing() {
        let mut sink = RingSink::new(0);
        sink.record(&ev(7));
        assert_eq!(sink.len(), 0);
        assert_eq!(sink.dropped(), 1);
        assert!(sink.drain_jsonl().is_empty());
    }
}
