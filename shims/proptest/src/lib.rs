//! Minimal, offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of proptest's API that the workspace's property tests use:
//!
//! * the [`strategy::Strategy`] trait with `prop_map`, `prop_filter`,
//!   `prop_filter_map`, `prop_recursive`, and `boxed`;
//! * strategies for integer ranges, tuples, `Vec<S>`, [`strategy::Just`],
//!   [`arbitrary::any`] (`bool` and [`sample::Index`]), `collection::vec`,
//!   and a small
//!   regex-pattern subset for `&'static str` (char classes + `{m,n}`);
//! * the [`proptest!`], [`prop_oneof!`], and `prop_assert*` macros and
//!   [`test_runner::Config`] (`ProptestConfig`).
//!
//! Differences from real proptest: generation is driven by a deterministic
//! xorshift RNG seeded from the test name (every run explores the same
//! cases), and failing cases are *not* shrunk — the panic message reports
//! the failing value via the test's own assertions instead.

pub mod test_runner {
    //! Test-runner configuration (the `ProptestConfig` of real proptest).

    /// Per-test configuration; only `cases` is honoured by the shim.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// Run each property `cases` times.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Deterministic xorshift64* RNG; seeded per test so runs are stable.
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seed from a test name (FNV-1a hash of the bytes).
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(h | 1)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform boolean.
        pub fn gen_bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }
}

use test_runner::TestRng;

/// Object-safe generation interface used by [`strategy::BoxedStrategy`].
#[doc(hidden)]
pub trait DynStrategy<T> {
    /// Generate one value.
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: strategy::Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use super::test_runner::TestRng;
    use super::DynStrategy;
    use std::rc::Rc;

    /// A recipe for generating random values of type `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generate one value using `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Keep only values passing `pred`; `whence` names the filter in
        /// the panic raised if rejection never stops.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                whence,
                pred,
            }
        }

        /// Map each generated value to a new *strategy* and draw from it
        /// (dependent generation).
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Combined filter + map: keep `Some` results of `f`.
        fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
            self,
            whence: &'static str,
            f: F,
        ) -> FilterMap<Self, F>
        where
            Self: Sized,
        {
            FilterMap {
                inner: self,
                whence,
                f,
            }
        }

        /// Build a recursive strategy: `self` generates leaves, and
        /// `recurse` wraps an inner strategy into a branch strategy, up to
        /// `depth` levels deep. `_desired_size` and `_expected_branch` are
        /// accepted for API compatibility but unused.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let branch = recurse(strat).boxed();
                strat = Union::new(vec![(1, leaf.clone()), (2, branch)]).boxed();
            }
            strat
        }

        /// Type-erase this strategy behind a cheap, clonable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A clonable, type-erased strategy handle.
    pub struct BoxedStrategy<T>(pub(crate) Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("filter '{}' rejected 10000 consecutive values", self.whence);
        }
    }

    /// See [`Strategy::prop_filter_map`].
    #[derive(Clone)]
    pub struct FilterMap<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            for _ in 0..10_000 {
                if let Some(v) = (self.f)(self.inner.generate(rng)) {
                    return v;
                }
            }
            panic!(
                "filter_map '{}' rejected 10000 consecutive values",
                self.whence
            );
        }
    }

    /// Weighted choice among boxed strategies (what [`prop_oneof!`]
    /// expands to).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u32,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
                total: self.total,
            }
        }
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` arms; weights must sum > 0.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! needs at least one weighted arm");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total as u64) as u32;
            for (w, s) in &self.arms {
                if pick < *w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! int_range_inclusive_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                    (*self.start() as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_inclusive_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A) (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) (A, B, C, D, E, F)
    }

    /// A `Vec` of strategies generates element-wise (used when collecting
    /// boxed strategies and feeding them into a tuple strategy).
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }

    /// `&'static str` patterns act as regex strategies over a small regex
    /// subset: literal chars, `\n`/`\t`/`\\` escapes, `[...]` classes with
    /// ranges, and `{n}`/`{m,n}` quantifiers.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            super::regex::generate(self, rng)
        }
    }
}

mod regex {
    //! Tiny regex-pattern generator backing `&'static str` strategies.

    use super::test_runner::TestRng;

    enum Piece {
        /// One char drawn uniformly from this alphabet...
        Class(Vec<char>),
        /// ...repeated between `min` and `max` times.
        Repeat(Vec<char>, u32, u32),
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet = match chars[i] {
                '[' => {
                    let mut set = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        let lo = unescape(&chars, &mut i);
                        if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                            i += 1;
                            let hi = unescape(&chars, &mut i);
                            for c in lo..=hi {
                                set.push(c);
                            }
                        } else {
                            set.push(lo);
                        }
                    }
                    assert!(i < chars.len(), "unterminated class in '{pattern}'");
                    i += 1; // ']'
                    set
                }
                _ => vec![unescape(&chars, &mut i)],
            };
            if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated quantifier in '{pattern}'"));
                let body: String = chars[i + 1..i + close].iter().collect();
                i += close + 1;
                let (min, max) = match body.split_once(',') {
                    Some((m, n)) => (m.parse().unwrap(), n.parse().unwrap()),
                    None => {
                        let n = body.parse().unwrap();
                        (n, n)
                    }
                };
                pieces.push(Piece::Repeat(alphabet, min, max));
            } else {
                pieces.push(Piece::Class(alphabet));
            }
        }
        pieces
    }

    fn unescape(chars: &[char], i: &mut usize) -> char {
        let c = chars[*i];
        *i += 1;
        if c != '\\' {
            return c;
        }
        let e = chars[*i];
        *i += 1;
        match e {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            match piece {
                Piece::Class(set) => out.push(set[rng.below(set.len() as u64) as usize]),
                Piece::Repeat(set, min, max) => {
                    let n = min + rng.below((max - min + 1) as u64) as u32;
                    for _ in 0..n {
                        out.push(set[rng.below(set.len() as u64) as usize]);
                    }
                }
            }
        }
        out
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait and [`any`] entry point.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical generation strategy.
    pub trait Arbitrary {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.gen_bool()
        }
    }

    impl Arbitrary for super::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            super::sample::Index(rng.next_u64() as usize)
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    /// Canonical strategy for `T` (`any::<bool>()`, `any::<Index>()`, ...).
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    /// See [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod sample {
    //! Sampling helpers (`prop::sample::Index`).

    /// An index into a collection of as-yet-unknown size.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index(pub(crate) usize);

    impl Index {
        /// Resolve against a collection of `size` elements (`size > 0`).
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index on empty collection");
            self.0 % size
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Generate a `Vec` whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    /// The crate root under its conventional short name (`prop::collection`,
    /// `prop::sample`, ...).
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Supports the `#![proptest_config(...)]` header
/// and any number of `#[test] fn name(pat in strategy, ...) { ... }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = (<$crate::test_runner::Config as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (
        cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                let ($($pat,)+) = (
                    $($crate::strategy::Strategy::generate(&($strat), &mut __rng),)+
                );
                $body
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// Choose among strategies, optionally weighted (`3 => strat`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Assert within a property (no shrinking in the shim; plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}
