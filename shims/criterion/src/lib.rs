//! Minimal, offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this crate provides the
//! subset of criterion's API that the workspace benches use: `Criterion`,
//! benchmark groups, `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_batched`, `Throughput`, `BenchmarkId`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros (both invocation forms).
//!
//! Measurement model: a short warm-up, then `sample_size` samples, each an
//! adaptively-sized batch of iterations. The median per-iteration time is
//! reported, along with throughput when configured. Statistics are cruder
//! than real criterion's but stable enough for before/after comparisons.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` should size its setup batches. The shim runs one
/// routine call per setup call regardless of the variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Throughput annotation for a benchmark: bytes or elements processed per
/// iteration, used to derive a rate from the measured time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A two-part benchmark identifier (`function/parameter`).
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Build an id from a displayed parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    /// Iterations to run in the current sample batch.
    batch: u64,
    /// Total time spent in measured routines for the current sample.
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it `batch` times back-to-back.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.batch {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with a fresh un-timed `setup` product per call.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.batch {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    /// Like [`Bencher::iter_batched`] but passes the input by reference.
    pub fn iter_batched_ref<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.batch {
            let mut input = setup();
            let start = Instant::now();
            std_black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Top-level benchmark driver: configuration plus result reporting.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(600),
        }
    }
}

impl Criterion {
    /// Set the number of samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Set the target total measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let sample_size = self.sample_size;
        let measurement_time = self.measurement_time;
        run_one(id, None, sample_size, measurement_time, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput annotation for subsequent benchmarks in the group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Override the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Run a benchmark identified by `id` within the group.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().full);
        run_one(
            &full,
            self.throughput,
            self.criterion.sample_size,
            self.criterion.measurement_time,
            f,
        );
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().full);
        run_one(
            &full,
            self.throughput,
            self.criterion.sample_size,
            self.criterion.measurement_time,
            |b| f(b, input),
        );
        self
    }

    /// Finish the group (report flushing is a no-op in the shim).
    pub fn finish(self) {}
}

/// Conversion into a [`BenchmarkId`], so group methods accept both
/// `BenchmarkId::new(..)` and plain strings.
pub trait IntoBenchmarkId {
    /// Perform the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            full: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { full: self }
    }
}

fn run_one(
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    measurement_time: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        batch: 1,
        elapsed: Duration::ZERO,
    };

    // Warm-up and batch sizing: find a batch that takes a measurable slice
    // of the budget, so per-sample timer noise is amortised.
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let budget_per_sample = measurement_time
        .checked_div(sample_size as u32)
        .unwrap_or(Duration::from_millis(10));
    let batch =
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        b.batch = batch;
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / batch as f64);
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples_ns[samples_ns.len() / 2];
    let lo = samples_ns[0];
    let hi = samples_ns[samples_ns.len() - 1];

    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            let gibs = n as f64 / median * 1e9 / (1024.0 * 1024.0 * 1024.0);
            if gibs >= 1.0 {
                format!("  thrpt: {gibs:9.3} GiB/s")
            } else {
                format!("  thrpt: {:9.3} MiB/s", gibs * 1024.0)
            }
        }
        Some(Throughput::Elements(n)) => {
            format!("  thrpt: {:10.0} elem/s", n as f64 / median * 1e9)
        }
        None => String::new(),
    };
    println!(
        "{id:<44} time: [{} {} {}]{rate}",
        fmt_ns(lo),
        fmt_ns(median),
        fmt_ns(hi)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:8.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:8.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:8.4} µs", ns / 1e3)
    } else {
        format!("{ns:8.2} ns")
    }
}

/// Define a benchmark group function, supporting both criterion forms:
/// `criterion_group!(benches, f1, f2)` and
/// `criterion_group! { name = benches; config = ...; targets = f1, f2 }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)*) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)*) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            // `cargo bench` forwards harness flags (e.g. `--bench`); the shim
            // runs every group unconditionally and ignores them.
            $( $group(); )+
        }
    };
}
