//! Differential test: the incremental re-check engine must be observably
//! identical to a from-scratch check of the same (edited) source — same
//! accept/reject decision, byte-identical span-sorted diagnostics, the
//! same judgment counters, and the same structural profile — at every
//! worker count, across cumulative edit batches, error introduction and
//! healing, and edits that shift cached diagnostics.

use rtjava::corpus::{edit_batches, scaled_classes};
use rtjava::lang::parse_program;
use rtjava::types::{
    check_program_in, CheckOptions, CheckerSnapshot, ClassEdit, IncrementalChecker, TypeError,
};

fn opts(jobs: usize) -> CheckOptions {
    CheckOptions {
        jobs,
        profile: true,
    }
}

/// From-scratch check of `src`: `Ok` yields the structural snapshot,
/// `Err` the span-sorted diagnostics.
fn scratch(src: &str, jobs: usize) -> Result<CheckerSnapshot, Vec<TypeError>> {
    let program = parse_program(src).expect("edited source parses");
    check_program_in(program, &opts(jobs))
        .map(|c| CheckerSnapshot::capture(&c.stats, c.profile.as_ref()).structure())
}

/// Asserts the engine's last outcome is observably identical to checking
/// `engine.source()` from scratch.
fn assert_matches_scratch(
    label: &str,
    engine: &IncrementalChecker,
    out: &rtjava::types::RecheckOutcome,
    jobs: usize,
) {
    match scratch(engine.source(), jobs) {
        Ok(snap) => {
            assert!(
                out.ok(),
                "{label}: engine reports errors where scratch accepts: {:?}",
                out.errors
            );
            // Capture after both runs so the process-global interner
            // statistics agree between the two snapshots.
            let engine_snap =
                CheckerSnapshot::capture(&out.stats, out.profile.as_ref()).structure();
            assert_eq!(engine_snap, snap, "{label}: structural snapshots diverge");
        }
        Err(errors) => {
            assert_eq!(
                out.errors, errors,
                "{label}: diagnostics diverge from scratch"
            );
        }
    }
}

fn as_edit(b: &rtjava::corpus::EditBatch) -> ClassEdit {
    ClassEdit {
        class: b.class.clone(),
        source: b.source.clone(),
    }
}

/// The full text of one class declaration in `src`.
fn decl_text(src: &str, name: &str) -> String {
    let program = parse_program(src).expect("source parses");
    let decl = program
        .classes
        .iter()
        .find(|c| c.name.name.as_str() == name)
        .unwrap_or_else(|| panic!("no class {name}"));
    src[decl.span.start as usize..decl.span.end as usize].to_string()
}

#[test]
fn cumulative_edit_batches_match_from_scratch() {
    for jobs in [1, 4] {
        let mut engine = IncrementalChecker::new(opts(jobs));
        let initial = engine.check_source(&scaled_classes(8)).expect("parses");
        assert_matches_scratch("initial", &engine, &initial, jobs);

        let script = edit_batches(8, 16, 5);
        for b in &script.batches {
            let out = engine
                .recheck(&[as_edit(b)])
                .unwrap_or_else(|e| panic!("batch {}: {e}", b.id));
            assert_matches_scratch(
                &format!("jobs={jobs} batch {} ({})", b.id, b.kind),
                &engine,
                &out,
                jobs,
            );
        }
    }
}

#[test]
fn signature_edit_dirties_exactly_the_dependent_closure() {
    let script = edit_batches(4, 48, 11);
    let sig = script
        .batches
        .iter()
        .find(|b| b.kind == "signature")
        .expect("48 batches include a signature edit");
    let replica = sig.class.strip_prefix("Item").unwrap();

    let mut engine = IncrementalChecker::new(opts(1));
    engine.check_source(&scaled_classes(4)).expect("parses");
    let out = engine.recheck(&[as_edit(sig)]).expect("applies");
    assert!(out.ok(), "{:?}", out.errors);
    assert!(
        out.full_rebuild,
        "a signature change must rebuild the table"
    );
    let mut dirty: Vec<&str> = out.dirty.iter().map(|s| s.as_str()).collect();
    dirty.sort_unstable();
    let expected = [
        format!("Item{replica}"),
        format!("Node{replica}"),
        format!("Stack{replica}"),
    ];
    assert_eq!(
        dirty, expected,
        "the dirty closure must be the edited class plus its dependents"
    );
}

#[test]
fn body_edit_rechecks_only_the_edited_class() {
    let script = edit_batches(4, 48, 11);
    let body = script
        .batches
        .iter()
        .find(|b| b.kind == "body")
        .expect("48 batches include a body edit");

    let mut engine = IncrementalChecker::new(opts(1));
    engine.check_source(&scaled_classes(4)).expect("parses");
    let out = engine.recheck(&[as_edit(body)]).expect("applies");
    assert!(out.ok(), "{:?}", out.errors);
    assert!(!out.full_rebuild, "a body edit must keep the table");
    let dirty: Vec<&str> = out.dirty.iter().map(|s| s.as_str()).collect();
    assert_eq!(dirty, [body.class.as_str()]);
    assert_eq!(out.reused, out.classes - 1);
}

#[test]
fn error_edit_and_heal_match_from_scratch() {
    let pristine = scaled_classes(4);
    let script = edit_batches(4, 48, 11);
    let bad = script
        .batches
        .iter()
        .find(|b| b.kind == "body_error")
        .expect("48 batches include an error edit");

    let mut engine = IncrementalChecker::new(opts(2));
    engine.check_source(&pristine).expect("parses");

    let out = engine.recheck(&[as_edit(bad)]).expect("applies");
    assert!(!out.ok(), "the error edit must produce a diagnostic");
    assert_matches_scratch("error introduced", &engine, &out, 2);

    // Healing: restore the pristine declaration text.
    let heal = ClassEdit {
        class: bad.class.clone(),
        source: decl_text(&pristine, &bad.class),
    };
    let out = engine.recheck(&[heal]).expect("applies");
    assert!(
        out.ok(),
        "healing must clear the diagnostic: {:?}",
        out.errors
    );
    assert_matches_scratch("error healed", &engine, &out, 2);
}

#[test]
fn body_edit_shifts_cached_diagnostics_of_later_classes() {
    let pristine = scaled_classes(4);
    let mut engine = IncrementalChecker::new(opts(1));
    engine.check_source(&pristine).expect("parses");

    // Introduce an error in a late replica, then edit an early class
    // body so every later declaration moves: the cached diagnostic must
    // be re-anchored to its new position, not re-derived.
    let broken = decl_text(&pristine, "Base3").replacen(
        "this.tag = this.tag + x;",
        "this.tag = missing + x;",
        1,
    );
    let out = engine
        .recheck(&[ClassEdit {
            class: "Base3".to_string(),
            source: broken,
        }])
        .expect("applies");
    assert!(!out.ok());
    assert_matches_scratch("error planted", &engine, &out, 1);

    let padded = decl_text(&pristine, "Stack0").replacen(
        "let c = 0;",
        "let c = 0;\n        let padding = 424242;\n        c = c + padding - padding;",
        1,
    );
    let out = engine
        .recheck(&[ClassEdit {
            class: "Stack0".to_string(),
            source: padded,
        }])
        .expect("applies");
    assert!(!out.ok(), "the planted error must survive the body edit");
    let dirty: Vec<&str> = out.dirty.iter().map(|s| s.as_str()).collect();
    assert_eq!(dirty, ["Stack0"], "only the padded class re-checks");
    assert_matches_scratch("error shifted", &engine, &out, 1);
}
