//! Integration tests reproducing the paper's worked examples:
//! Figure 5/6 (TStack legality and encapsulation) and Figure 8
//! (producer/consumer through a subregion portal), plus dynamic audits of
//! Theorems 3 and 4.

use rtjava::interp::{build, run_source, RunConfig, RunOutcome};
use rtjava::runtime::CheckMode;

const TSTACK: &str = r#"
    class TStack<Owner stackOwner, Owner TOwner> {
        TNode<this, TOwner> head;
        void push(T<TOwner> value) {
            let TNode<this, TOwner> n = new TNode<this, TOwner>;
            n.init(value, this.head);
            this.head = n;
        }
        T<TOwner> pop() {
            let TNode<this, TOwner> h = this.head;
            if (h == null) { return null; }
            this.head = h.next;
            return h.value;
        }
    }
    class TNode<Owner nodeOwner, Owner TOwner> {
        T<TOwner> value;
        TNode<nodeOwner, TOwner> next;
        void init(T<TOwner> v, TNode<nodeOwner, TOwner> n) {
            this.value = v;
            this.next = n;
        }
    }
    class T<Owner o> { int x; }
"#;

fn tstack_main(body: &str) -> String {
    format!("{TSTACK}\n{{ (RHandle<r1> h1) {{ (RHandle<r2> h2) {{ {body} }} }} }}")
}

fn assert_well_typed(src: &str) {
    if let Err(e) = build(src) {
        panic!("expected well-typed, got: {e}");
    }
}

fn assert_ill_typed(src: &str) {
    assert!(build(src).is_err(), "expected a type error");
}

fn run_ok(src: &str, mode: CheckMode) -> RunOutcome {
    let out = run_source(src, RunConfig::new(mode)).unwrap();
    assert!(out.error.is_none(), "runtime error: {:?}", out.error);
    out
}

#[test]
fn figure5_legal_stacks() {
    // s1..s5 from Figure 5 lines 27-31.
    for decl in [
        "let TStack<r2, r2> s1 = new TStack<r2, r2>;",
        "let TStack<r2, r1> s2 = new TStack<r2, r1>;",
        "let TStack<r1, immortal> s3 = new TStack<r1, immortal>;",
        "let TStack<heap, immortal> s4 = new TStack<heap, immortal>;",
        "let TStack<immortal, heap> s5 = new TStack<immortal, heap>;",
    ] {
        assert_well_typed(&tstack_main(decl));
    }
}

#[test]
fn figure5_illegal_stacks() {
    // s6 and s7 from Figure 5 lines 32-33.
    for decl in [
        "let TStack<r1, r2> s6 = new TStack<r1, r2>;",
        "let TStack<heap, r1> s7 = new TStack<heap, r1>;",
    ] {
        assert_ill_typed(&tstack_main(decl));
    }
}

#[test]
fn figure6_ownership_runs() {
    // The TStack works, and every node lives in the stack's region.
    let src = tstack_main(
        r#"
        let TStack<r2, r1> s2 = new TStack<r2, r1>;
        let i = 0;
        while (i < 3) {
            let t = new T<r1>;
            t.x = i;
            s2.push(t);
            i = i + 1;
        }
        print(s2.pop().x);
        print(s2.pop().x);
        print(s2.pop().x);
        "#,
    );
    for mode in [CheckMode::Dynamic, CheckMode::Static, CheckMode::Audit] {
        let out = run_ok(&src, mode);
        assert_eq!(out.trace, vec!["2", "1", "0"]);
    }
}

#[test]
fn encapsulation_blocks_outside_access() {
    // O3: the nodes are inside the stack's encapsulation boundary.
    assert_ill_typed(&tstack_main(
        "let TStack<r2, r2> s = new TStack<r2, r2>; let n = s.head;",
    ));
    assert_ill_typed(&tstack_main(
        "let TStack<r2, r2> s = new TStack<r2, r2>; s.head = null;",
    ));
}

#[test]
fn figure8_producer_consumer() {
    let src = r#"
        regionKind BufferRegion extends SharedRegion {
            subregion BufferSubRegion : LT(4096) NoRT b;
            Token<this> produced;
            Token<this> consumed;
        }
        regionKind BufferSubRegion extends SharedRegion {
            Frame<this> f;
        }
        class Token<Owner o> { int n; }
        class Frame<Owner o> { int data; }
        class Producer<BufferRegion r> {
            void run(RHandle<r> h, int iters) accesses r, heap {
                let i = 0;
                while (i < iters) {
                    let c = h.consumed;
                    while (c == null || c.n != i) { yield(); c = h.consumed; }
                    (RHandle<BufferSubRegion r2> h2 = h.b) {
                        let frame = new Frame<r2>;
                        frame.data = 10 + i;
                        h2.f = frame;
                    }
                    let t = new Token<r>;
                    t.n = i + 1;
                    h.produced = t;
                    i = i + 1;
                }
            }
        }
        class Consumer<BufferRegion r> {
            void run(RHandle<r> h, int iters) accesses r, heap {
                let i = 0;
                while (i < iters) {
                    let p = h.produced;
                    while (p == null || p.n != i + 1) { yield(); p = h.produced; }
                    (RHandle<BufferSubRegion r2> h2 = h.b) {
                        let frame = h2.f;
                        print(frame.data);
                        h2.f = null;
                    }
                    let t = new Token<r>;
                    t.n = i + 1;
                    h.consumed = t;
                    i = i + 1;
                }
            }
        }
        {
            (RHandle<BufferRegion : VT r> h) {
                let kick = new Token<r>;
                kick.n = 0;
                h.consumed = kick;
                fork (new Producer<r>).run(h, 4);
                fork (new Consumer<r>).run(h, 4);
            }
        }
    "#;
    for mode in [CheckMode::Dynamic, CheckMode::Static, CheckMode::Audit] {
        let out = run_ok(src, mode);
        assert_eq!(out.trace, vec!["10", "11", "12", "13"], "{mode:?}");
        // The subregion is flushed once per iteration: no memory leak for
        // long-lived threads (the point of Section 2.2).
        assert!(out.stats.regions_flushed >= 4, "{mode:?}");
    }
}

#[test]
fn theorem3_audit_no_dangling_and_encapsulation() {
    // A busy well-typed program audited at runtime: every store satisfies
    // "the target's region outlives the holder's region" (Theorem 3.2)
    // and no check ever fires.
    let src = tstack_main(
        r#"
        let TStack<r2, r1> a = new TStack<r2, r1>;
        let TStack<r2, immortal> b = new TStack<r2, immortal>;
        let i = 0;
        while (i < 16) {
            let t = new T<r1>;
            t.x = i;
            a.push(t);
            let u = new T<immortal>;
            u.x = i;
            b.push(u);
            if (i % 3 == 0) { a.pop(); }
            i = i + 1;
        }
        print(a.pop().x);
        print(b.pop().x);
        "#,
    );
    let out = run_ok(&src, CheckMode::Audit);
    assert!(
        out.stats.store_checks > 0,
        "the audit actually checked stores"
    );
    assert_eq!(out.stats.check_cycles, 0, "audit mode is free");
}

#[test]
fn region_deletion_is_lifo_and_complete() {
    let src = r#"
        class Cell<Owner o> { Cell<o> next; int v; }
        class Link<Owner o, Owner p> { Cell<p> out; }
        {
            let outer_alive = 0;
            (RHandle<a> ha) {
                (RHandle<b> hb) {
                    let Link<b, a> x = new Link<b, a>;
                    let Cell<a> y = new Cell<a>;
                    x.out = y; // inner may point out
                    outer_alive = outer_alive + 1;
                }
                (RHandle<c> hc) {
                    let Cell<c> z = new Cell<c>;
                    outer_alive = outer_alive + 1;
                }
            }
            print(outer_alive);
        }
    "#;
    let out = run_ok(src, CheckMode::Dynamic);
    assert_eq!(out.trace, vec!["2"]);
    assert_eq!(out.stats.regions_deleted, 3);
    // Everything region-allocated is gone by the end.
    assert_eq!(out.stats.objects_allocated, 3);
}

#[test]
fn outer_to_inner_store_fails_only_statically() {
    // The defining difference between the two systems: the same bug is a
    // compile-time error with the type system and a runtime check failure
    // without it. We express the bug in a program that *is* type-correct
    // per annotations but whose annotation the checker rejects — so here
    // we just confirm the checker rejects it; the runtime side of the coin
    // is exercised by the rtj-runtime unit tests.
    assert_ill_typed(
        r#"
        class Box<Owner o, Owner p> { Cell<p> kept; }
        class Cell<Owner o> { int v; }
        {
            (RHandle<outer> ho) {
                (RHandle<inner> hi) {
                    let Box<outer, inner> b = new Box<outer, inner>;
                }
            }
        }
        "#,
    );
}
