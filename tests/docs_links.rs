//! Docs link-check: every file a documentation page points at must
//! exist, and the serving docs must stay cross-referenced. Guards the
//! README/EXPERIMENTS/OBSERVABILITY/SERVER set against drift as crates
//! and schemas are added.

use std::fs;
use std::path::PathBuf;

/// The documentation pages under check (user-facing docs; ISSUE.md and
/// the paper notes are driver artifacts, not docs).
const DOCS: &[&str] = &[
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "OBSERVABILITY.md",
    "SERVER.md",
    "ROADMAP.md",
];

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn read_doc(name: &str) -> String {
    let path = repo_root().join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Extracts `[text](target)` markdown-link targets.
fn markdown_link_targets(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut targets = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
            if let Some(end) = text[i + 2..].find(')') {
                targets.push(text[i + 2..i + 2 + end].to_string());
                i += 2 + end;
                continue;
            }
        }
        i += 1;
    }
    targets
}

/// Repo-relative paths referenced in backticks or prose: tokens that
/// contain a `/` or end in a checked extension and start with a known
/// top-level entry. Keeps the scan conservative — shell snippets full
/// of generated files (`load.json`, `stack.rtj`) are not flagged.
fn path_like_references(text: &str) -> Vec<String> {
    let mut refs = Vec::new();
    for raw in text.split(|c: char| c.is_whitespace() || "`()[],;\"'".contains(c)) {
        let token = raw.trim_end_matches(|c: char| ".:*".contains(c));
        let checked_prefix = token.starts_with("crates/")
            || token.starts_with("tests/")
            || token.starts_with("BENCH_")
            || (token.ends_with(".md")
                && !token.contains('/')
                && token.chars().next().is_some_and(|c| c.is_ascii_uppercase()));
        if checked_prefix && !token.contains("${") && !token.contains('<') {
            refs.push(token.to_string());
        }
    }
    refs
}

fn exists_in_repo(target: &str) -> bool {
    repo_root().join(target).exists()
}

#[test]
fn markdown_links_resolve() {
    let mut broken = Vec::new();
    for doc in DOCS {
        for target in markdown_link_targets(&read_doc(doc)) {
            // External links and intra-page anchors are out of scope.
            if target.starts_with("http") || target.starts_with('#') || target.is_empty() {
                continue;
            }
            let file = target.split('#').next().unwrap();
            if !exists_in_repo(file) {
                broken.push(format!("{doc}: [{target}]"));
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken markdown links:\n{}",
        broken.join("\n")
    );
}

#[test]
fn referenced_repo_paths_exist() {
    let mut missing = Vec::new();
    for doc in DOCS {
        for target in path_like_references(&read_doc(doc)) {
            if !exists_in_repo(&target) {
                missing.push(format!("{doc}: `{target}`"));
            }
        }
    }
    assert!(
        missing.is_empty(),
        "docs reference repo paths that do not exist:\n{}",
        missing.join("\n")
    );
}

/// The serving docs triangle: SERVER.md is the schema/architecture
/// reference, OBSERVABILITY.md owns the metrics pipeline it builds on,
/// EXPERIMENTS.md carries the regen commands — each must point at the
/// others so a reader can navigate from any corner.
#[test]
fn serving_docs_cross_reference_each_other() {
    let server = read_doc("SERVER.md");
    assert!(
        server.contains("OBSERVABILITY.md"),
        "SERVER.md must cite OBSERVABILITY.md"
    );
    assert!(
        server.contains("EXPERIMENTS.md"),
        "SERVER.md must cite EXPERIMENTS.md"
    );
    assert!(
        server.contains("rtj-load/v1"),
        "SERVER.md must document rtj-load/v1"
    );
    assert!(
        server.contains("Diagnosing tail latency"),
        "SERVER.md must keep the flight-recorder walkthrough"
    );

    let obs = read_doc("OBSERVABILITY.md");
    assert!(
        obs.contains("SERVER.md"),
        "OBSERVABILITY.md must cite SERVER.md"
    );
    assert!(
        obs.contains("rtj-load/v1"),
        "OBSERVABILITY.md must list rtj-load/v1"
    );
    assert!(
        obs.contains("rtj-server-trace/v1"),
        "OBSERVABILITY.md must document the flight-recorder trace schema"
    );
    assert!(
        obs.contains("rtj-timeline/v1"),
        "OBSERVABILITY.md must document the telemetry time-series schema"
    );

    let exp = read_doc("EXPERIMENTS.md");
    assert!(
        exp.contains("SERVER.md"),
        "EXPERIMENTS.md must cite SERVER.md"
    );
    assert!(
        exp.contains("BENCH_serve.json"),
        "EXPERIMENTS.md must state the BENCH_serve.json regen command"
    );
    assert!(
        exp.contains("--telemetry") && exp.contains("flight_recorder"),
        "EXPERIMENTS.md must state the flight-recorder regen commands"
    );

    let readme = read_doc("README.md");
    assert!(
        readme.contains("SERVER.md"),
        "README.md must point at SERVER.md"
    );
    assert!(
        readme.contains("rtjc") || readme.contains("rtj-cli"),
        "README quickstart gone?"
    );
}

/// The checked-in serving baseline must parse as a current-schema
/// document (catches schema drift that would strand the baseline) and
/// must actually witness the sharded-result-path claims: a 1/2/4/8
/// worker sweep with byte-identical results and real scaling, plus an
/// overload row where deadline shedding (not unbounded queueing)
/// absorbed the excess and the Figure-12 ledger still held exactly over
/// the admitted population.
#[test]
fn bench_serve_baseline_parses() {
    let text = read_doc("BENCH_serve.json");
    let report = rtjava::server::ServeBenchReport::parse(&text).expect("BENCH_serve.json parses");

    let workers: Vec<usize> = report.rows.iter().map(|r| r.workers).collect();
    assert_eq!(workers, [1, 2, 4, 8], "sweep must cover 1/2/4/8 workers");
    assert!(
        report.identical_results(),
        "per-session results must be byte-identical across worker counts"
    );
    assert!(
        report.speedup() >= 2.5,
        "sweep speedup 1→8 workers must be >= 2.5x, got {:.2}x",
        report.speedup()
    );
    for row in &report.rows {
        assert_eq!(row.sessions, report.rows[0].sessions, "fixed batch");
    }

    let overload = &report.overload;
    assert!(
        overload.completed >= 1000,
        "baseline should show a real run"
    );
    assert!(
        overload.shed_total() > 0,
        "overload must shed instead of queueing without bound"
    );
    let ledger = overload.ledger.expect("baseline carries the ledger");
    assert!(ledger.holds(), "Figure-12 ledger must hold in the baseline");
    assert!(ledger.matched_sessions > 0, "matched population non-empty");
}

/// The checked-in incremental-checking baseline must parse as a
/// current-schema `rtj-check-bench/v1` document and witness the PR's
/// headline claims: a real scaled workload, all three edit kinds
/// replayed, body-only edits re-checking exactly one class, and the
/// ≥10x body-only speedup over the from-scratch median.
#[test]
fn bench_check_baseline_parses() {
    let text = read_doc("BENCH_check.json");
    let doc = rtjava::runtime::Json::parse(&text).expect("BENCH_check.json is JSON");
    let report = rtjava::types::CheckBenchReport::from_json(&doc).expect("BENCH_check.json parses");

    assert_eq!(report.workload, "scaled:64");
    assert_eq!(report.classes, 384, "the headline scale is 64 replicas");
    for kind in ["body", "signature", "body_error"] {
        assert!(
            report.rows.iter().any(|r| r.kind == kind),
            "baseline must replay a {kind} edit"
        );
    }
    for row in report.rows.iter().filter(|r| r.kind == "body") {
        assert_eq!(row.dirty, 1, "a body edit re-checks exactly one class");
        assert_eq!(row.reused, report.classes - 1);
    }
    assert!(
        report.rows.iter().any(|r| r.errors > 0),
        "an error edit must surface diagnostics in the baseline"
    );
    assert!(
        report.body_speedup_p50() >= 10.0,
        "body-only p50 speedup must be >= 10x, got {:.1}x",
        report.body_speedup_p50()
    );
}
