//! Acceptance tests for the static-checker observability layer
//! (OBSERVABILITY.md "Static-checker observability"):
//!
//! * self-profiling is opt-in (no span tree unless requested) and two
//!   profiled runs at the same `--jobs` produce *structurally*
//!   identical `rtj-checker-metrics/v1` snapshots — same span tree
//!   shape, judgment counters, and interner footprint, with only the
//!   wall-clock fields free to differ;
//! * snapshots round-trip through their JSON rendering and render as a
//!   report (the `rtjc report` view) and as Chrome trace events;
//! * type errors carry judgment derivation traces: a negative corpus
//!   program produces a multi-step `≽` chain under `--explain`.

use rtjava::corpus::{all, negatives, scaled_classes, Scale};
use rtjava::lang::{diag, parse_program};
use rtjava::runtime::Json;
use rtjava::types::{
    check_program_in, CheckOptions, Checked, CheckerSnapshot, CHECKER_METRICS_SCHEMA,
};

fn checked_with_profile(source: &str, jobs: usize) -> Checked {
    let program = parse_program(source).expect("parses");
    check_program_in(
        program,
        &CheckOptions {
            jobs,
            profile: true,
        },
    )
    .expect("well-typed")
}

#[test]
fn profiling_is_opt_in() {
    let program = parse_program(&all(Scale::Smoke)[0].source).expect("parses");
    let checked = check_program_in(
        program,
        &CheckOptions {
            jobs: 2,
            ..Default::default()
        },
    )
    .expect("well-typed");
    assert!(
        checked.profile.is_none(),
        "no span tree without opts.profile"
    );
}

#[test]
fn repeated_profiled_runs_are_structurally_identical() {
    // The acceptance criterion behind `rtjc check --profile=prof.json
    // --jobs 4` twice: wall times differ, structure never does.
    let source = scaled_classes(6);
    let a = checked_with_profile(&source, 4);
    let b = checked_with_profile(&source, 4);
    let sa = CheckerSnapshot::capture(&a.stats, a.profile.as_ref());
    let sb = CheckerSnapshot::capture(&b.stats, b.profile.as_ref());
    assert_eq!(
        sa.structure(),
        sb.structure(),
        "span-tree shape, judgment counters, or interner sizes drifted between runs"
    );
    // The span tree contains the pipeline phases, with per-class spans
    // nested under `classes` in declaration order.
    let names: Vec<&str> = sa.phases.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(names, ["lower", "table", "wf", "classes", "main"]);
    let classes = &sa.phases[3];
    assert!(
        classes.children.len() >= 6,
        "one child span per class, got {}",
        classes.children.len()
    );
    assert!(classes.children[0].name.starts_with("class "));
}

#[test]
fn serial_and_parallel_profiles_share_their_class_span_order() {
    let source = scaled_classes(6);
    let serial = checked_with_profile(&source, 1);
    let parallel = checked_with_profile(&source, 4);
    let spans = |c: &Checked| -> Vec<String> {
        let profile = c.profile.as_ref().expect("profiled");
        profile
            .phases
            .iter()
            .find(|p| p.name == "classes")
            .expect("classes phase")
            .children
            .iter()
            .map(|s| s.name.clone())
            .collect()
    };
    assert_eq!(
        spans(&serial),
        spans(&parallel),
        "worker scheduling leaked into the span tree"
    );
}

#[test]
fn snapshot_round_trips_and_renders() {
    let checked = checked_with_profile(&all(Scale::Smoke)[0].source, 2);
    let snap = CheckerSnapshot::capture(&checked.stats, checked.profile.as_ref());
    // Versioned JSON document with the summary counter fields.
    let doc = snap.to_json();
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(CHECKER_METRICS_SCHEMA)
    );
    for field in [
        "classes_checked",
        "methods_checked",
        "threads_used",
        "elapsed_ns",
        "cache_hits",
        "cache_misses",
    ] {
        assert!(
            doc.get(field).and_then(Json::as_u64).is_some(),
            "missing `{field}`"
        );
    }
    // Round-trip: render → parse → render is a fixed point.
    let text = snap.render();
    let back = CheckerSnapshot::parse(&text).expect("parses back");
    assert_eq!(snap, back);
    assert_eq!(text, back.render());
    // The report view (what `rtjc report` prints) names the judgment
    // families and the pipeline phases.
    let report = back.render_report();
    for needle in [
        "ownership",
        "outlives",
        "subkind",
        "classes checked",
        "phases:",
    ] {
        assert!(
            report.contains(needle),
            "report missing `{needle}`:\n{report}"
        );
    }
    // Chrome trace export: one complete event per span, all well-formed.
    let Json::Arr(events) = snap.to_chrome_trace() else {
        panic!("chrome trace must be a JSON array");
    };
    assert_eq!(events.len(), span_count(&snap));
    for ev in &events {
        assert_eq!(ev.get("ph").and_then(Json::as_str), Some("X"));
        assert!(ev.get("ts").and_then(Json::as_u64).is_some());
    }
}

fn span_count(snap: &CheckerSnapshot) -> usize {
    fn walk(spans: &[rtjava::types::PhaseSpan]) -> usize {
        spans.len() + spans.iter().map(|s| walk(&s.children)).sum::<usize>()
    }
    walk(&snap.phases)
}

#[test]
fn negative_corpus_explains_a_multi_step_outlives_chain() {
    let (_, source) = negatives()
        .into_iter()
        .find(|(name, _)| *name == "outlives-chain")
        .expect("outlives-chain negative in the corpus");
    let program = parse_program(&source).expect("parses");
    let errs = check_program_in(program, &CheckOptions::default()).expect_err("ill-typed");
    let with_chain = errs
        .iter()
        .find(|e| !e.notes.is_empty())
        .expect("at least one error carries a derivation trace");
    // The failed direction is stated, then the reverse direction's
    // evidence chain — two `≽` steps through the declared `where`
    // facts — shows why the required lifetime ordering cannot hold.
    let notes = with_chain.notes.join("\n");
    assert!(
        notes.contains("does not hold"),
        "failure statement missing:\n{notes}"
    );
    let chain_steps = with_chain
        .notes
        .iter()
        .filter(|n| n.contains('≽') && n.contains('—'))
        .count();
    assert!(
        chain_steps >= 2,
        "expected a multi-step derivation chain, got {chain_steps} step(s):\n{notes}"
    );
    // `--explain` renders the notes as secondary labels; the default
    // rendering stays byte-identical to the note-free form.
    let explained = diag::render_with_notes(
        &source,
        with_chain.span,
        &with_chain.message,
        &with_chain.notes,
    );
    assert!(explained.contains("= note:"));
    assert_eq!(
        diag::render_with_notes(&source, with_chain.span, &with_chain.message, &[]),
        diag::render(&source, with_chain.span, &with_chain.message),
    );
}

#[test]
fn derivation_notes_are_identical_across_jobs() {
    // PR 1's determinism contract extends to the notes: the explanation
    // engine replays facts in insertion order, never scheduling order.
    for (name, source) in negatives() {
        let program = parse_program(&source).unwrap_or_else(|e| panic!("{name}: {e}"));
        let serial = check_program_in(
            program.clone(),
            &CheckOptions {
                jobs: 1,
                ..Default::default()
            },
        )
        .expect_err("ill-typed");
        let parallel = check_program_in(
            program,
            &CheckOptions {
                jobs: 4,
                ..Default::default()
            },
        )
        .expect_err("ill-typed");
        assert_eq!(serial, parallel, "{name}: --jobs changed the diagnostics");
    }
}
