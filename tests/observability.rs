//! The observability layer's determinism and accounting guarantees
//! (DESIGN.md §7, OBSERVABILITY.md):
//!
//! * metrics snapshots and event traces are byte-identical across
//!   repeated runs and across checker `--jobs` settings;
//! * every trace line is valid JSON with the event envelope fields;
//! * elision accounting balances per check kind: a `Static` run elides
//!   exactly the checks the `Dynamic` run performs, because the
//!   deterministic scheduler visits the same sites.

use rtjava::corpus::{all, Scale};
use rtjava::interp::{build, run_checked, RunConfig, TraceCapture};
use rtjava::runtime::{CheckKind, CheckMode, Json, MetricsSnapshot};
use rtjava::types::{check_program_in, CheckOptions};

fn traced(mode: CheckMode) -> RunConfig {
    let mut cfg = RunConfig::new(mode);
    cfg.events = TraceCapture::Full;
    cfg
}

#[test]
fn metrics_and_traces_are_identical_across_repeated_runs() {
    for bench in all(Scale::Smoke) {
        let checked = build(&bench.source).unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        let a = run_checked(&checked, traced(CheckMode::Dynamic));
        let b = run_checked(&checked, traced(CheckMode::Dynamic));
        assert!(a.error.is_none(), "{}: {:?}", bench.name, a.error);
        assert_eq!(a.metrics, b.metrics, "{}: metrics drifted", bench.name);
        assert_eq!(
            a.metrics.render(),
            b.metrics.render(),
            "{}: snapshot text drifted",
            bench.name
        );
        assert_eq!(a.events, b.events, "{}: trace drifted", bench.name);
        assert_eq!(a.cycles, b.cycles, "{}: virtual time drifted", bench.name);
    }
}

#[test]
fn metrics_and_traces_are_identical_across_checker_jobs() {
    // Checker parallelism may only change *checking* wall time — the
    // checked program, and therefore the run's metrics and trace, must
    // be bit-for-bit the same.
    for bench in all(Scale::Smoke).into_iter().take(4) {
        let program = rtjava::lang::parse_program(&bench.source)
            .unwrap_or_else(|e| panic!("{}: {}", bench.name, e.message));
        let serial = check_program_in(
            program.clone(),
            &CheckOptions {
                jobs: 1,
                ..Default::default()
            },
        )
        .unwrap_or_else(|_| panic!("{}: serial check failed", bench.name));
        let parallel = check_program_in(
            program,
            &CheckOptions {
                jobs: 4,
                ..Default::default()
            },
        )
        .unwrap_or_else(|_| panic!("{}: parallel check failed", bench.name));
        let a = run_checked(&serial, traced(CheckMode::Dynamic));
        let b = run_checked(&parallel, traced(CheckMode::Dynamic));
        assert_eq!(
            a.metrics.render(),
            b.metrics.render(),
            "{}: --jobs changed the metrics snapshot",
            bench.name
        );
        assert_eq!(
            a.events, b.events,
            "{}: --jobs changed the trace",
            bench.name
        );
    }
}

#[test]
fn trace_lines_are_valid_json_with_the_event_envelope() {
    let bench = &all(Scale::Smoke)[0];
    let checked = build(&bench.source).unwrap();
    let out = run_checked(&checked, traced(CheckMode::Dynamic));
    let events = out.events.expect("full capture requested");
    assert!(!events.is_empty(), "a run should emit events");
    let mut last_at = 0u64;
    for line in &events {
        let ev = Json::parse(line).unwrap_or_else(|e| panic!("bad JSONL `{line}`: {e}"));
        let tag = ev.get("ev").and_then(Json::as_str).expect("`ev` tag");
        assert!(!tag.is_empty());
        let at = ev.get("at").and_then(Json::as_u64).expect("`at` stamp");
        assert!(at >= last_at, "timestamps must be monotone: {line}");
        last_at = at;
    }
    // The check events carry the site taxonomy.
    let check_lines: Vec<&String> = events
        .iter()
        .filter(|l| l.contains("\"ev\":\"check\""))
        .collect();
    assert!(!check_lines.is_empty(), "dynamic run records check events");
    for line in check_lines {
        let ev = Json::parse(line).unwrap();
        let kind = ev.get("kind").and_then(Json::as_str).unwrap();
        assert!(CheckKind::parse(kind).is_some(), "unknown kind in {line}");
        assert_eq!(
            ev.get("outcome").and_then(Json::as_str),
            Some("charged"),
            "{line}"
        );
    }
}

#[test]
fn ring_capture_keeps_only_the_tail() {
    let bench = &all(Scale::Smoke)[0];
    let checked = build(&bench.source).unwrap();
    let mut cfg = RunConfig::new(CheckMode::Dynamic);
    cfg.events = TraceCapture::Ring(8);
    let ring = run_checked(&checked, cfg);
    let full = run_checked(&checked, traced(CheckMode::Dynamic));
    let ring_events = ring.events.expect("ring capture requested");
    let full_events = full.events.expect("full capture requested");
    assert_eq!(ring_events.len(), 8);
    assert_eq!(
        ring_events.as_slice(),
        &full_events[full_events.len() - 8..],
        "the ring holds the most recent events"
    );
}

#[test]
fn elision_accounting_balances_per_check_kind() {
    for bench in all(Scale::Smoke) {
        let checked = build(&bench.source).unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        let dynamic = run_checked(&checked, RunConfig::new(CheckMode::Dynamic));
        let static_ = run_checked(&checked, RunConfig::new(CheckMode::Static));
        let audit = run_checked(&checked, RunConfig::new(CheckMode::Audit));
        for kind in CheckKind::ALL {
            let d = dynamic.metrics.check(kind);
            let s = static_.metrics.check(kind);
            let a = audit.metrics.check(kind);
            assert_eq!(
                s.elided,
                d.performed,
                "{} {}: static must elide exactly what dynamic performs",
                bench.name,
                kind.name()
            );
            assert_eq!(s.performed, 0, "{}: static ran a check", bench.name);
            assert_eq!(d.elided, 0, "{}: dynamic elided a check", bench.name);
            assert_eq!(a.performed, d.performed, "{}", bench.name);
            assert_eq!(a.cycles, 0, "{}: audit charged cycles", bench.name);
            // Corpus programs are well-typed: no check ever fails.
            assert_eq!(d.failed + s.failed + a.failed, 0, "{}", bench.name);
        }
        assert!(
            dynamic.metrics.checks_performed() > 0,
            "{}: a corpus program should exercise at least one check site",
            bench.name
        );
        assert_eq!(
            dynamic.metrics.check_cycles(),
            dynamic.stats.check_cycles,
            "{}: legacy stats view must agree",
            bench.name
        );
    }
}

#[test]
fn snapshots_roundtrip_through_json() {
    let bench = &all(Scale::Smoke)[1];
    let checked = build(&bench.source).unwrap();
    let out = run_checked(&checked, RunConfig::new(CheckMode::Dynamic));
    let text = out.metrics.render();
    let back = MetricsSnapshot::parse(&text).unwrap();
    assert_eq!(back, out.metrics);
    assert_eq!(back.render(), text, "rendering is stable");
}
