//! Language-level tests of the runtime claims: GC interference (or the
//! lack of it), dynamic dispatch, fresh subregion instances, LT reuse.

use rtjava::interp::{run_source, RunConfig};
use rtjava::runtime::CheckMode;

fn cfg_gc(mode: CheckMode) -> RunConfig {
    let mut cfg = RunConfig::new(mode);
    cfg.gc_enabled = true;
    cfg
}

#[test]
fn heap_allocation_triggers_collections_region_allocation_does_not() {
    // Heap-allocating loop: the collector runs and charges pauses.
    let heap_src = r#"
        class Blob<Owner o> { int a; int b; int c; int d; int e; int f; int g; int hh; }
        {
            let i = 0;
            while (i < 40000) {
                let b = new Blob<heap>;
                b.a = i;
                i = i + 1;
            }
            print(i);
        }
    "#;
    let out = run_source(heap_src, cfg_gc(CheckMode::Static)).unwrap();
    assert!(out.error.is_none(), "{:?}", out.error);
    assert!(
        out.stats.gc_collections > 0,
        "heap churn must trigger the collector: {:?}",
        out.stats
    );
    assert!(out.stats.gc_pause_cycles > 0);

    // The same loop into a region: the collector never runs. This is the
    // paper's core runtime motivation.
    let region_src = r#"
        class Blob<Owner o> { int a; int b; int c; int d; int e; int f; int g; int hh; }
        {
            (RHandle<r> h) {
                let i = 0;
                while (i < 40000) {
                    let b = new Blob<r>;
                    b.a = i;
                    i = i + 1;
                }
                print(i);
            }
        }
    "#;
    let out = run_source(region_src, cfg_gc(CheckMode::Static)).unwrap();
    assert!(out.error.is_none());
    assert_eq!(out.stats.gc_collections, 0, "regions avoid the collector");
    assert_eq!(out.trace, vec!["40000"]);
}

#[test]
fn rt_thread_completes_through_gc_storms() {
    // A regular thread hammers the heap (driving collections) while a
    // real-time thread does periodic region work. The RT thread's lock
    // waits stay zero and everything completes.
    let src = r#"
        regionKind SensorRegion extends SharedRegion {
            subregion ScratchRegion : LT(4096) RT scratch;
            Reading<this> latest;
        }
        regionKind ScratchRegion extends SharedRegion { }
        class Reading<Owner o> { int seq; }
        class Blob<Owner o> { int a; int b; int c; int d; }
        class Churner<Owner o> {
            void run(int n) accesses heap {
                let i = 0;
                while (i < n) {
                    let b = new Blob<heap>;
                    b.a = i;
                    i = i + 1;
                }
            }
        }
        class Sensor<SensorRegion r> {
            void run(RHandle<r> h, int periods) accesses r, RT {
                let p = 0;
                while (p < periods) {
                    (RHandle<ScratchRegion s> hs = h.scratch) {
                        let rd = new Reading<r>;
                        rd.seq = p + 1;
                        h.latest = rd;
                    }
                    p = p + 1;
                }
            }
        }
        {
            (RHandle<SensorRegion : LT(65536) r> h) {
                fork (new Churner<heap>).run(30000);
                RT fork (new Sensor<r>).run(h, 8);
                let done = false;
                while (!done) {
                    let rd = h.latest;
                    if (rd != null && rd.seq == 8) { done = true; }
                    yield();
                }
                print("rt finished");
            }
        }
    "#;
    let out = run_source(src, cfg_gc(CheckMode::Static)).unwrap();
    assert!(out.error.is_none(), "{:?}", out.error);
    assert_eq!(out.trace, vec!["rt finished"]);
    assert!(out.stats.gc_collections > 0, "the collector did run");
    assert_eq!(
        out.stats.rt_max_lock_wait, 0,
        "the RT thread never waited on a region lock"
    );
}

#[test]
fn dynamic_dispatch_uses_the_allocated_class() {
    let src = r#"
        class Shape<Owner o> {
            int area() { return 0; }
        }
        class Square<Owner o> extends Shape<o> {
            int side;
            int area() { return this.side * this.side; }
        }
        {
            (RHandle<r> h) {
                let sq = new Square<r>;
                sq.side = 5;
                let Shape<r> s = sq;
                print(s.area());
            }
        }
    "#;
    let out = run_source(src, RunConfig::new(CheckMode::Dynamic)).unwrap();
    assert!(out.error.is_none(), "{:?}", out.error);
    assert_eq!(out.trace, vec!["25"], "dispatch on the dynamic class");
}

#[test]
fn fresh_subregion_instances_are_independent() {
    let src = r#"
        regionKind K extends SharedRegion {
            subregion S : LT(4096) NoRT s;
        }
        regionKind S extends SharedRegion {
            Cell<this> keep;
        }
        class Cell<Owner o> { int v; }
        {
            (RHandle<K : VT r> h) {
                (RHandle<S s1> h1 = h.s) {
                    let c = new Cell<s1>;
                    c.v = 1;
                    h1.keep = c;   // pin the old instance via its portal
                }
                (RHandle<S s2> h2 = new h.s) {
                    // A fresh instance: its portal starts null.
                    if (h2.keep == null) { print("fresh"); }
                    let d = new Cell<s2>;
                    d.v = 2;
                    print(d.v);
                }
            }
        }
    "#;
    let out = run_source(src, RunConfig::new(CheckMode::Dynamic)).unwrap();
    assert!(out.error.is_none(), "{:?}", out.error);
    assert_eq!(out.trace, vec!["fresh", "2"]);
}

#[test]
fn lt_subregion_reuse_never_grows_memory() {
    // Re-entering a flushed LT subregion commits no new memory; the
    // whole loop runs in one 4 KiB arena.
    let src = r#"
        regionKind K extends SharedRegion {
            subregion S : LT(4096) NoRT s;
        }
        regionKind S extends SharedRegion { }
        class Chunk<Owner o> { int a; int b; int c; }
        {
            (RHandle<K : VT r> h) {
                let round = 0;
                while (round < 50) {
                    (RHandle<S sc> hs = h.s) {
                        let i = 0;
                        let Chunk<sc> last = null;
                        while (i < 80) {
                            let c = new Chunk<sc>;
                            c.a = i;
                            last = c;
                            i = i + 1;
                        }
                    }
                    round = round + 1;
                }
                print(round);
            }
        }
    "#;
    let out = run_source(src, RunConfig::new(CheckMode::Dynamic)).unwrap();
    assert!(out.error.is_none(), "{:?}", out.error);
    assert_eq!(out.trace, vec!["50"]);
    // 50 rounds * 80 chunks were allocated…
    assert_eq!(out.stats.objects_allocated, 4000);
    // …but flushed every round.
    assert!(out.stats.regions_flushed >= 50);
}

#[test]
fn lt_overflow_is_a_runtime_error_even_when_well_typed() {
    // LT sizing is the programmer's responsibility; the paper's system
    // throws when the bound is too small. (Static sizing is cited as
    // separate work [31, 32].)
    let src = r#"
        regionKind K extends SharedRegion {
            subregion S : LT(64) NoRT s;
        }
        regionKind S extends SharedRegion { }
        class Chunk<Owner o> { int a; int b; int c; }
        {
            (RHandle<K : VT r> h) {
                (RHandle<S sc> hs = h.s) {
                    let i = 0;
                    while (i < 10) {
                        let c = new Chunk<sc>;
                        i = i + 1;
                    }
                }
            }
        }
    "#;
    let out = run_source(src, RunConfig::new(CheckMode::Static)).unwrap();
    let err = out.error.expect("LT overflow must surface");
    assert!(err.to_string().contains("capacity exceeded"), "{err}");
}
