//! The pretty-printer is a usable formatter: every corpus program
//! round-trips through `fmt` to a fixpoint, and the formatted form still
//! type-checks and runs identically.

use rtjava::corpus::{all, Scale};
use rtjava::interp::{build, run_checked, RunConfig};
use rtjava::lang::{parse_program, pretty_program};
use rtjava::runtime::CheckMode;

#[test]
fn corpus_formats_to_a_fixpoint() {
    for bench in all(Scale::Smoke) {
        let p1 = parse_program(&bench.source).unwrap();
        let formatted = pretty_program(&p1);
        let p2 = parse_program(&formatted)
            .unwrap_or_else(|e| panic!("{}: reparse failed: {e}", bench.name));
        assert_eq!(
            pretty_program(&p2),
            formatted,
            "{}: fmt is not a fixpoint",
            bench.name
        );
    }
}

#[test]
fn formatted_corpus_behaves_identically() {
    for bench in all(Scale::Smoke).into_iter().take(4) {
        let original = build(&bench.source).unwrap();
        let formatted_src = pretty_program(&parse_program(&bench.source).unwrap());
        let formatted = build(&formatted_src)
            .unwrap_or_else(|e| panic!("{}: formatted form fails to check: {e}", bench.name));
        let a = run_checked(&original, RunConfig::new(CheckMode::Dynamic));
        let b = run_checked(&formatted, RunConfig::new(CheckMode::Dynamic));
        assert!(a.error.is_none() && b.error.is_none(), "{}", bench.name);
        assert_eq!(a.trace, b.trace, "{}", bench.name);
        assert_eq!(
            a.cycles, b.cycles,
            "{}: formatting changed cost",
            bench.name
        );
    }
}
