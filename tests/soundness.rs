//! Property-based soundness testing (Theorems 3 and 4).
//!
//! The generator produces random region/ownership programs — legal and
//! illegal — from a template space where legality is *independently
//! decidable*: regions are created in a known LIFO order, so we can
//! predict exactly which owner instantiations and stores the type system
//! must accept. The properties:
//!
//! 1. **Differential**: the checker's verdict equals the oracle's.
//! 2. **Soundness**: every accepted program runs to completion in `Audit`
//!    mode — the RTSJ dynamic checks never fail (Theorem 3) — and the
//!    three check modes produce identical traces.

use proptest::prelude::*;
use rtjava::interp::{build, run_checked, RunConfig};
use rtjava::runtime::CheckMode;

/// An owner in the template space: rank 0 owners live forever, rank `k`
/// owners are the `k`-th nested region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum O {
    Heap,
    Immortal,
    R(usize),
}

impl O {
    fn rank(self) -> usize {
        match self {
            O::Heap | O::Immortal => 0,
            O::R(k) => k + 1,
        }
    }

    fn name(self) -> String {
        match self {
            O::Heap => "heap".into(),
            O::Immortal => "immortal".into(),
            O::R(k) => format!("r{k}"),
        }
    }

    /// Whether `self` is guaranteed to outlive `other`.
    fn outlives(self, other: O) -> bool {
        self.rank() <= other.rank()
    }
}

#[derive(Debug, Clone)]
struct Holder {
    own: O,
    item_owner: O,
}

#[derive(Debug, Clone)]
struct Store {
    holder: usize,
    item: usize,
}

#[derive(Debug, Clone)]
struct Template {
    depth: usize,
    holders: Vec<Holder>,
    items: Vec<O>,
    stores: Vec<Store>,
}

impl Template {
    /// Repairs a template into a legal one: holder item-owners are
    /// clamped to outlive the holder, and stores are filtered to
    /// type-matching pairs.
    fn legalize(mut self) -> Template {
        for h in &mut self.holders {
            if !h.item_owner.outlives(h.own) {
                h.item_owner = h.own;
            }
        }
        let holders = &self.holders;
        let items = &self.items;
        self.stores
            .retain(|s| items[s.item] == holders[s.holder].item_owner);
        self
    }

    /// The oracle: exactly when must the type system accept?
    fn legal(&self) -> bool {
        self.holders.iter().all(|h| h.item_owner.outlives(h.own))
            && self
                .stores
                .iter()
                .all(|s| self.items[s.item] == self.holders[s.holder].item_owner)
    }

    fn source(&self) -> String {
        let mut body = String::new();
        for (i, h) in self.holders.iter().enumerate() {
            let (a, b) = (h.own.name(), h.item_owner.name());
            body.push_str(&format!(
                "let Holder<{a}, {b}> x{i} = new Holder<{a}, {b}>;\n"
            ));
        }
        for (k, o) in self.items.iter().enumerate() {
            let c = o.name();
            body.push_str(&format!("let Item<{c}> y{k} = new Item<{c}>;\n"));
            body.push_str(&format!("y{k}.v = {k};\n"));
        }
        for s in &self.stores {
            body.push_str(&format!("x{}.item = y{};\n", s.holder, s.item));
        }
        body.push_str("let live = 0;\n");
        for i in 0..self.holders.len() {
            body.push_str(&format!(
                "if (x{i}.item != null) {{ live = live + x{i}.item.v + 1; }}\n"
            ));
        }
        body.push_str("print(live);\n");

        let mut src = String::from(
            "class Holder<Owner o, Owner p> { Item<p> item; }\n\
             class Item<Owner q> { int v; }\n{\n",
        );
        for k in 0..self.depth {
            src.push_str(&format!("(RHandle<r{k}> h{k}) {{\n"));
        }
        src.push_str(&body);
        for _ in 0..self.depth {
            src.push_str("}\n");
        }
        src.push_str("}\n");
        src
    }
}

fn owner_strategy(depth: usize) -> impl Strategy<Value = O> {
    prop_oneof![Just(O::Heap), Just(O::Immortal), (0..depth).prop_map(O::R),]
}

fn template_strategy() -> impl Strategy<Value = Template> {
    (1usize..=3).prop_flat_map(|depth| {
        let holders = prop::collection::vec(
            (owner_strategy(depth), owner_strategy(depth))
                .prop_map(|(own, item_owner)| Holder { own, item_owner }),
            1..5,
        );
        let items = prop::collection::vec(owner_strategy(depth), 1..5);
        (holders, items).prop_flat_map(move |(holders, items)| {
            let (nh, ni) = (holders.len(), items.len());
            let stores = prop::collection::vec(
                (0..nh, 0..ni).prop_map(|(holder, item)| Store { holder, item }),
                0..6,
            );
            stores.prop_map(move |stores| Template {
                depth,
                holders: holders.clone(),
                items: items.clone(),
                stores,
            })
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The checker accepts exactly the programs the oracle says are legal.
    #[test]
    fn checker_matches_oracle(t in template_strategy()) {
        let src = t.source();
        let verdict = build(&src).is_ok();
        prop_assert_eq!(
            verdict,
            t.legal(),
            "oracle/checker disagreement on:\n{}",
            src
        );
    }

    /// Well-typed programs never fail the RTSJ dynamic checks, and check
    /// mode never changes behaviour.
    #[test]
    fn accepted_programs_are_audit_clean(t0 in template_strategy()) {
        let t = t0.legalize();
        prop_assert!(t.legal(), "legalize must produce a legal template");
        let src = t.source();
        let checked = build(&src).expect("oracle says legal");
        let audit = run_checked(&checked, RunConfig::new(CheckMode::Audit));
        prop_assert!(audit.error.is_none(), "audit failed: {:?}\n{}", audit.error, src);
        let dynamic = run_checked(&checked, RunConfig::new(CheckMode::Dynamic));
        let static_ = run_checked(&checked, RunConfig::new(CheckMode::Static));
        prop_assert!(dynamic.error.is_none());
        prop_assert!(static_.error.is_none());
        prop_assert_eq!(&dynamic.trace, &audit.trace);
        prop_assert_eq!(&dynamic.trace, &static_.trace);
        prop_assert!(dynamic.cycles >= static_.cycles);
    }
}

/// The generator space really does contain both legal and illegal
/// programs (so the differential test is not vacuous).
#[test]
fn template_space_is_two_sided() {
    let legal = Template {
        depth: 2,
        holders: vec![Holder {
            own: O::R(1),
            item_owner: O::R(0),
        }],
        items: vec![O::R(0)],
        stores: vec![Store { holder: 0, item: 0 }],
    };
    assert!(legal.legal());
    assert!(build(&legal.source()).is_ok());

    let illegal_type = Template {
        depth: 2,
        holders: vec![Holder {
            own: O::R(0),
            item_owner: O::R(1),
        }],
        items: vec![],
        stores: vec![],
    };
    assert!(!illegal_type.legal());
    assert!(build(&illegal_type.source()).is_err());

    let illegal_store = Template {
        depth: 2,
        holders: vec![Holder {
            own: O::R(1),
            item_owner: O::R(1),
        }],
        items: vec![O::R(0)],
        stores: vec![Store { holder: 0, item: 0 }],
    };
    assert!(!illegal_store.legal());
    assert!(build(&illegal_store.source()).is_err());
}
