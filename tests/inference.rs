//! End-to-end tests of Section 2.5: default completion and local type
//! inference keep the annotation burden low without changing behaviour.

use rtjava::interp::{build, run_source, RunConfig};
use rtjava::runtime::CheckMode;

fn run_trace(src: &str) -> Vec<String> {
    let out = run_source(src, RunConfig::new(CheckMode::Dynamic)).unwrap();
    assert!(out.error.is_none(), "{:?}", out.error);
    out.trace
}

#[test]
fn field_defaults_to_owner_of_this() {
    // `Node next;` ≡ `Node<o> next;` — the owner of `this`.
    let src = r#"
        class Node<Owner o> { int v; Node next; }
        {
            (RHandle<r> h) {
                let a = new Node<r>;
                let b = new Node<r>;
                a.v = 7;
                b.next = a;
                print(b.next.v);
            }
        }
    "#;
    assert_eq!(run_trace(src), vec!["7"]);
}

#[test]
fn method_signature_defaults_to_initial_region() {
    // `Pt mk()` ≡ `Pt<initialRegion> mk()`: the callee allocates in the
    // caller's current region.
    let src = r#"
        class Pt<Owner o> { int x; }
        class Factory<Owner o> {
            Pt mk(int v) accesses initialRegion {
                let Pt<initialRegion> p = new Pt<initialRegion>;
                p.x = v;
                return p;
            }
        }
        {
            (RHandle<r> h) {
                let f = new Factory<r>;
                let p = f.mk(5);
                print(p.x);
            }
        }
    "#;
    assert_eq!(run_trace(src), vec!["5"]);
}

#[test]
fn let_types_are_inferred() {
    // No local type annotations anywhere.
    let src = r#"
        class Cell<Owner o> { int v; Cell<o> next; }
        {
            (RHandle<r> h) {
                let head = new Cell<r>;
                head.v = 1;
                let second = new Cell<r>;
                second.v = 2;
                second.next = head;
                let x = second.next;
                print(x.v + second.v);
            }
        }
    "#;
    assert_eq!(run_trace(src), vec!["3"]);
}

#[test]
fn call_site_owner_args_are_inferred() {
    // `c.take(a, b)` infers `q := r2` from the argument types.
    let src = r#"
        class D<Owner a> { int v; }
        class C<Owner o> {
            int take<Owner q>(D<q> x, D<q> y) {
                return x.v + y.v;
            }
        }
        {
            (RHandle<r1> h1) {
                (RHandle<r2> h2) {
                    let c = new C<r1>;
                    let a = new D<r2>;
                    a.v = 10;
                    let b = new D<r2>;
                    b.v = 20;
                    print(c.take(a, b));
                    print(c.take<r2>(a, b));
                }
            }
        }
    "#;
    assert_eq!(run_trace(src), vec!["30", "30"]);
}

#[test]
fn conflicting_inference_requires_explicit_args() {
    let src = r#"
        class D<Owner a> { int v; }
        class C<Owner o> {
            int take<Owner q>(D<q> x, D<q> y) { return 0; }
        }
        {
            (RHandle<r1> h1) {
                (RHandle<r2> h2) {
                    let c = new C<r1>;
                    let a = new D<r1>;
                    let b = new D<r2>;
                    let z = c.take(a, b);
                }
            }
        }
    "#;
    let err = build(src).unwrap_err();
    assert!(err.to_string().contains("cannot infer owner"));
}

#[test]
fn default_effects_cover_usual_method_bodies() {
    // No accesses clause anywhere: the default (class + method owners +
    // initialRegion) suffices for this-owned allocation and field access.
    let src = r#"
        class Stack<Owner o> {
            Node<this> top;
            void push(int v) {
                let n = new Node<this>;
                n.v = v;
                n.below = this.top;
                this.top = n;
            }
            int pop() {
                let n = this.top;
                if (n == null) { return -1; }
                this.top = n.below;
                return n.v;
            }
        }
        class Node<Owner o> { int v; Node<o> below; }
        {
            (RHandle<r> h) {
                let s = new Stack<r>;
                s.push(1);
                s.push(2);
                print(s.pop());
                print(s.pop());
                print(s.pop());
            }
        }
    "#;
    assert_eq!(run_trace(src), vec!["2", "1", "-1"]);
}

#[test]
fn new_without_owners_allocates_in_current_region() {
    let src = r#"
        class Cell<Owner o> { int v; }
        {
            (RHandle<r> h) {
                let c = new Cell;
                c.v = 9;
                print(c.v);
            }
        }
    "#;
    assert_eq!(run_trace(src), vec!["9"]);
}
