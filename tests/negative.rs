//! A battery of ill-typed programs, one per typing rule family, asserting
//! both that they are rejected and that the error message points at the
//! right concept.

use rtjava::interp::{build, BuildError};

fn errors_containing(src: &str, needle: &str) {
    match build(src) {
        Ok(_) => panic!("expected rejection ({needle}) for:\n{src}"),
        Err(BuildError::Type(errs)) => {
            assert!(
                errs.iter().any(|e| e.message.contains(needle)),
                "no error contains {needle:?}; got {:#?}",
                errs.iter().map(|e| &e.message).collect::<Vec<_>>()
            );
        }
        Err(BuildError::Parse(e)) => panic!("unexpected parse error: {e}"),
    }
}

// ------------------------------------------------------------- region types

#[test]
fn dangling_type_rejected() {
    errors_containing(
        r#"
        class P<Owner o, Owner q> { }
        { (RHandle<a> ha) { (RHandle<b> hb) {
            let P<a, b> p = new P<a, b>;
        } } }
        "#,
        "must outlive the first owner",
    );
}

#[test]
fn unknown_owner_rejected() {
    errors_containing(
        "class C<Owner o> { } { let C<ghost> c = new C<ghost>; }",
        "unknown owner",
    );
}

#[test]
fn region_names_are_lexically_scoped() {
    errors_containing(
        r#"
        class C<Owner o> { }
        {
            (RHandle<a> ha) { }
            let C<a> c = new C<a>;
        }
        "#,
        "unknown owner",
    );
}

#[test]
fn arity_mismatch_rejected() {
    errors_containing(
        "class C<Owner o, Owner p> { } { (RHandle<r> h) { let C<r> c = new C<r>; } }",
        "expects 2 owner argument",
    );
}

// ---------------------------------------------------------- ownership types

#[test]
fn this_owned_field_not_readable_outside() {
    errors_containing(
        r#"
        class S<Owner o> { N<this> rep; }
        class N<Owner o> { int v; }
        { (RHandle<r> h) { let S<r> s = new S<r>; let x = s.rep; } }
        "#,
        "can only be accessed through `this`",
    );
}

#[test]
fn this_owned_field_not_writable_outside() {
    errors_containing(
        r#"
        class S<Owner o> { N<this> rep; }
        class N<Owner o> { int v; }
        { (RHandle<r> h) { let S<r> s = new S<r>; s.rep = null; } }
        "#,
        "can only be accessed through `this`",
    );
}

#[test]
fn method_mentioning_this_needs_this_receiver() {
    errors_containing(
        r#"
        class S<Owner o> {
            N<this> make() { return new N<this>; }
        }
        class N<Owner o> { int v; }
        { (RHandle<r> h) { let S<r> s = new S<r>; let n = s.make(); } }
        "#,
        "can only be invoked on `this`",
    );
}

// ------------------------------------------------------------------ effects

#[test]
fn allocation_needs_effect() {
    errors_containing(
        r#"
        class C<Owner o> {
            void m(RHandle<heap> hh) accesses o {
                let Object<heap> x = new Object<heap>;
            }
        }
        { }
        "#,
        "do not cover",
    );
}

#[test]
fn callee_effects_must_be_subsumed() {
    errors_containing(
        r#"
        class A<Owner o> {
            void helper(RHandle<heap> hh) accesses heap {
                let Object<heap> x = new Object<heap>;
            }
        }
        class B<Owner o> {
            void m(A<o> a, RHandle<heap> hh) accesses o {
                a.helper(hh);
            }
        }
        { }
        "#,
        "do not cover",
    );
}

#[test]
fn immortal_does_not_cover_the_heap_effect() {
    // immortal ≽ heap in the outlives relation (Figure 5's s5), but the
    // heap *effect* is special: only `heap` covers it.
    errors_containing(
        r#"
        class C<Owner o> {
            void m(RHandle<heap> hh) accesses o, immortal {
                let Object<heap> x = new Object<heap>;
            }
        }
        { }
        "#,
        "do not cover",
    );
}

#[test]
fn region_creation_needs_heap_effect() {
    errors_containing(
        r#"
        class C<Owner o> {
            void m() accesses o { (RHandle<r> h) { } }
        }
        { }
        "#,
        "do not cover",
    );
}

#[test]
fn handle_required_to_allocate_in_formal_region() {
    errors_containing(
        r#"
        class C<Owner o> {
            void m<Region q>() accesses q {
                let Object<q> x = new Object<q>;
            }
        }
        { }
        "#,
        "no region handle",
    );
}

// ------------------------------------------------- multithreaded extensions

#[test]
fn fork_cannot_capture_local_regions() {
    errors_containing(
        r#"
        class W<Owner r> {
            void run(RHandle<r> h) accesses r { }
        }
        {
            (RHandle<r> h) {
                fork (new W<r>).run(h);
            }
        }
        "#,
        "forked thread",
    );
}

#[test]
fn fork_of_rt_method_from_regular_thread_rejected() {
    errors_containing(
        r#"
        regionKind K extends SharedRegion {
            subregion S : LT(64) RT s;
        }
        regionKind S extends SharedRegion { }
        class W<K r> {
            void run(RHandle<r> h) accesses r, RT {
                (RHandle<S s> hs = h.s) { }
            }
        }
        {
            (RHandle<K : VT r> h) {
                fork (new W<r>).run(h);
            }
        }
        "#,
        "RT",
    );
}

#[test]
fn subregion_kind_must_match_declaration() {
    errors_containing(
        r#"
        regionKind K extends SharedRegion {
            subregion S : VT NoRT s;
        }
        regionKind S extends SharedRegion { }
        regionKind Other extends SharedRegion { }
        {
            (RHandle<K : VT r> h) {
                (RHandle<Other s2> h2 = h.s) { }
            }
        }
        "#,
        "declares",
    );
}

#[test]
fn unknown_subregion_member() {
    errors_containing(
        r#"
        regionKind K extends SharedRegion { }
        {
            (RHandle<K : VT r> h) {
                (RHandle<K s2> h2 = h.nope) { }
            }
        }
        "#,
        "no subregion",
    );
}

#[test]
fn portal_values_must_outlive_their_region() {
    errors_containing(
        r#"
        regionKind K extends SharedRegion {
            Cell<this> slot;
        }
        class Cell<Owner o> { int v; }
        {
            (RHandle<K : VT r> h) {
                (RHandle<inner> hi) {
                    let Cell<inner> c = new Cell<inner>;
                    h.slot = c;
                }
            }
        }
        "#,
        "expected",
    );
}

#[test]
fn portals_must_be_class_typed() {
    errors_containing(
        r#"
        regionKind K extends SharedRegion {
            int counter;
        }
        { }
        "#,
        "portal fields must have class type",
    );
}

// --------------------------------------------------------- real-time rules

#[test]
fn rt_fork_callee_cannot_need_heap() {
    errors_containing(
        r#"
        class W<Owner r> {
            void run() accesses r, heap { }
        }
        {
            (RHandle<SharedRegion : LT(1024) r> h) {
                RT fork (new W<r>).run();
            }
        }
        "#,
        "do not cover",
    );
}

#[test]
fn rt_fork_owner_must_live_in_shared_region() {
    errors_containing(
        r#"
        class W<Owner r> {
            void run() accesses r { }
        }
        {
            RT fork (new W<heap>).run();
        }
        "#,
        "fork",
    );
}

#[test]
fn entering_rt_subregion_needs_rt_effect() {
    errors_containing(
        r#"
        regionKind K extends SharedRegion {
            subregion S : LT(64) RT s;
        }
        regionKind S extends SharedRegion { }
        class W<K r> {
            void run(RHandle<r> h) accesses r {
                (RHandle<S hs_r> hs = h.s) { }
            }
        }
        { }
        "#,
        "RT",
    );
}

#[test]
fn entering_nort_subregion_needs_heap_effect() {
    errors_containing(
        r#"
        regionKind K extends SharedRegion {
            subregion S : LT(64) NoRT s;
        }
        regionKind S extends SharedRegion { }
        class W<K r> {
            void run(RHandle<r> h) accesses r {
                (RHandle<S hs_r> hs = h.s) { }
            }
        }
        { }
        "#,
        "do not cover",
    );
}

// ----------------------------------------------------------- miscellaneous

#[test]
fn return_inside_region_block() {
    errors_containing(
        r#"
        class C<Owner o> {
            int m() accesses heap {
                (RHandle<r> h) { return 1; }
                return 0;
            }
        }
        { }
        "#,
        "region block",
    );
}

#[test]
fn handles_are_immutable() {
    errors_containing(
        r#"
        {
            (RHandle<a> ha) {
                (RHandle<b> hb) {
                    ha = hb;
                }
            }
        }
        "#,
        "cannot be reassigned",
    );
}

#[test]
fn subregion_cycles_rejected() {
    errors_containing(
        r#"
        regionKind A extends SharedRegion { subregion B : VT NoRT b; }
        regionKind B extends SharedRegion { subregion A : VT NoRT a; }
        { }
        "#,
        "infinite",
    );
}

#[test]
fn where_clause_constraints_enforced() {
    errors_containing(
        r#"
        class C<Owner o, Owner p> where p owns o { }
        {
            (RHandle<a> ha) {
                (RHandle<b> hb) {
                    let C<b, a> c = new C<b, a>;
                }
            }
        }
        "#,
        "not satisfied",
    );
}

#[test]
fn override_with_wider_effects_rejected() {
    errors_containing(
        r#"
        class Base<Owner o> {
            void m() accesses o { }
        }
        class Derived<Owner o> extends Base<o> {
            void m() accesses o, heap { }
        }
        { }
        "#,
        "overridden",
    );
}
