//! Differential test: the serial (`jobs = 1`) and parallel (`jobs > 1`)
//! checking drivers must be observably identical — same accept/reject
//! decision and byte-identical, span-sorted diagnostics — on every corpus
//! program, every deliberately ill-typed program, and the scaled
//! replicated-class corpus.

use rtjava::corpus::{all, negatives, scaled_classes, Scale};
use rtjava::lang::parse_program;
use rtjava::types::{check_program_in, CheckOptions, TypeError};

/// Renders diagnostics the way `rtjc` ultimately orders them: the byte
/// string compared between drivers.
fn render(errs: &[TypeError]) -> String {
    errs.iter()
        .map(|e| format!("{:?}: {}", e.span, e.message))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Checks `src` under both drivers and asserts identical outcomes.
fn assert_drivers_agree(name: &str, src: &str) {
    let program = parse_program(src).unwrap_or_else(|e| panic!("{name}: parse error: {e}"));
    let serial = check_program_in(
        program.clone(),
        &CheckOptions {
            jobs: 1,
            ..Default::default()
        },
    );
    for jobs in [2, 4, 0] {
        let parallel = check_program_in(
            program.clone(),
            &CheckOptions {
                jobs,
                ..Default::default()
            },
        );
        match (&serial, &parallel) {
            (Ok(s), Ok(p)) => {
                assert_eq!(
                    s.stats.classes_checked, p.stats.classes_checked,
                    "{name}: class counts diverge at jobs={jobs}"
                );
                assert_eq!(
                    s.stats.methods_checked, p.stats.methods_checked,
                    "{name}: method counts diverge at jobs={jobs}"
                );
            }
            (Err(s), Err(p)) => {
                assert_eq!(
                    render(s),
                    render(p),
                    "{name}: diagnostics diverge at jobs={jobs}"
                );
            }
            (s, p) => panic!(
                "{name}: accept/reject diverges at jobs={jobs}: serial ok={}, parallel ok={}",
                s.is_ok(),
                p.is_ok()
            ),
        }
    }
}

#[test]
fn corpus_programs_agree_across_drivers() {
    for bench in all(Scale::Smoke) {
        assert_drivers_agree(bench.name, &bench.source);
    }
}

#[test]
fn negative_programs_agree_across_drivers() {
    for (name, src) in negatives() {
        assert_drivers_agree(name, &src);
    }
}

#[test]
fn scaled_corpus_agrees_across_drivers() {
    for copies in [1, 8, 32] {
        assert_drivers_agree(&format!("scaled-{copies}"), &scaled_classes(copies));
    }
}

#[test]
fn diagnostics_are_span_sorted() {
    for (name, src) in negatives() {
        let program = parse_program(&src).unwrap();
        let errs = check_program_in(
            program,
            &CheckOptions {
                jobs: 0,
                ..Default::default()
            },
        )
        .expect_err("negative program must be rejected");
        let spans: Vec<_> = errs.iter().map(|e| e.span).collect();
        let mut sorted = spans.clone();
        sorted.sort();
        assert_eq!(spans, sorted, "{name}: diagnostics not sorted by span");
    }
}
