//! Every corpus benchmark typechecks and runs identically in all three
//! check modes, never fails a check in audit mode (Theorems 3 and 4), and
//! is never faster with checks than without.

use rtjava::corpus::{all, Scale};
use rtjava::interp::{build, run_checked, RunConfig};
use rtjava::runtime::CheckMode;

#[test]
fn corpus_smoke_all_modes_agree() {
    for bench in all(Scale::Smoke) {
        let checked = build(&bench.source).unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        let dynamic = run_checked(&checked, RunConfig::new(CheckMode::Dynamic));
        let static_ = run_checked(&checked, RunConfig::new(CheckMode::Static));
        let audit = run_checked(&checked, RunConfig::new(CheckMode::Audit));
        for (mode, out) in [
            ("dynamic", &dynamic),
            ("static", &static_),
            ("audit", &audit),
        ] {
            assert!(
                out.error.is_none(),
                "{} ({mode}): {:?}",
                bench.name,
                out.error
            );
            assert!(!out.trace.is_empty(), "{} printed nothing", bench.name);
        }
        assert_eq!(dynamic.trace, static_.trace, "{}", bench.name);
        assert_eq!(dynamic.trace, audit.trace, "{}", bench.name);
        // Audit performs the same checks as dynamic, for free.
        assert_eq!(
            audit.stats.store_checks, dynamic.stats.store_checks,
            "{}",
            bench.name
        );
        assert_eq!(audit.stats.check_cycles, 0, "{}", bench.name);
        assert!(
            dynamic.cycles >= static_.cycles,
            "{}: dynamic {} < static {}",
            bench.name,
            dynamic.cycles,
            static_.cycles
        );
    }
}

#[test]
fn corpus_never_uses_the_gc_heap_for_primary_data() {
    // "In our implementations, the primary data structures are allocated
    // in regions (i.e., not in the garbage collected heap)." — except the
    // phone server's immortal database, which is also not GC'd.
    for bench in all(Scale::Smoke) {
        let checked = build(&bench.source).unwrap();
        let out = run_checked(&checked, RunConfig::new(CheckMode::Dynamic));
        assert_eq!(
            out.stats.gc_collections, 0,
            "{}: the GC should never run",
            bench.name
        );
    }
}

#[test]
fn annotations_are_a_small_fraction() {
    // Figure 11's qualitative claim: little programming overhead.
    for row in rtjava::corpus::fig11() {
        let frac = row.annotated as f64 / row.loc as f64;
        assert!(
            frac < 0.40,
            "{}: {} of {} lines annotated ({frac:.2})",
            row.name,
            row.annotated,
            row.loc
        );
    }
}

#[test]
fn micro_benchmarks_have_the_largest_overheads() {
    let rows = rtjava::corpus::fig12(Scale::Smoke);
    let overhead = |n: &str| rows.iter().find(|r| r.name == n).unwrap().overhead;
    let micro_min = overhead("Array").min(overhead("Tree"));
    for other in ["Water", "Barnes", "ImageRec", "http", "game", "phone"] {
        assert!(
            micro_min > overhead(other),
            "micro {} ≤ {} {}",
            micro_min,
            other,
            overhead(other)
        );
    }
}
