//! A real-time thread sharing work with a regular thread — safely.
//!
//! The `RT fork`ed sensor thread runs with hard real-time constraints: the
//! type system proves it never touches the heap, never allocates in a
//! VT region, and never shares a subregion with regular threads (so a
//! garbage collection can never stall it — the paper's priority-inversion
//! fix). It repeatedly enters a preallocated **LT** subregion, allocates
//! its working set there in linear time, and exits (flushing the region
//! without freeing its memory, so the next period needs no allocation).
//!
//! ```sh
//! cargo run --example realtime_pipeline
//! ```

use rtjava::interp::{build, run_source, RunConfig};
use rtjava::runtime::CheckMode;

fn main() {
    let src = r#"
        regionKind SensorRegion extends SharedRegion {
            subregion ScratchRegion : LT(8192) RT scratch;
            Reading<this> latest;
        }
        regionKind ScratchRegion extends SharedRegion { }
        class Reading<Owner o> { int value; int seq; }
        class Sample<Owner o> { int raw; Sample<o> next; }

        class Sensor<SensorRegion r> {
            // The effects clause has no `heap`: this method is provably
            // GC-independent. `RT` lets it enter the RT-only subregion.
            void run(RHandle<r> h, int periods) accesses r, RT {
                let p = 0;
                while (p < periods) {
                    (RHandle<ScratchRegion s> hs = h.scratch) {
                        // Linear-time allocation from preallocated memory.
                        let Sample<s> window = null;
                        let i = 0;
                        while (i < 16) {
                            let smp = new Sample<s>;
                            smp.raw = p * 16 + i;
                            smp.next = window;
                            window = smp;
                            i = i + 1;
                        }
                        // Reduce the window to one reading.
                        let sum = 0;
                        let w = window;
                        while (w != null) {
                            sum = sum + w.raw;
                            w = w.next;
                        }
                        let rd = new Reading<r>;
                        rd.value = sum / 16;
                        rd.seq = p + 1;
                        h.latest = rd;
                    } // scratch flushed here: O(1), memory retained
                    p = p + 1;
                }
            }
        }

        {
            (RHandle<SensorRegion : LT(65536) r> h) {
                RT fork (new Sensor<r>).run(h, 4);
                // The regular thread (which may be interrupted by the
                // collector) just watches the portal.
                let last = 0;
                while (last < 4) {
                    let rd = h.latest;
                    if (rd != null && rd.seq > last) {
                        print(rd.value);
                        last = rd.seq;
                    }
                    yield();
                }
            }
        }
    "#;

    let out = run_source(src, RunConfig::new(CheckMode::Static)).unwrap();
    assert!(out.error.is_none(), "{:?}", out.error);
    // The real-time thread has strict scheduling priority, so the regular
    // watcher typically observes only the final reading.
    println!("readings seen   : {}", out.trace.join(", "));
    assert!(!out.trace.is_empty());
    println!(
        "rt lock waits   : {} cycles (type system keeps it at zero)",
        out.stats.rt_max_lock_wait
    );
    assert_eq!(out.stats.rt_max_lock_wait, 0);

    // What the type system rejects: a real-time thread calling into code
    // that needs the heap.
    let bad = r#"
        class Logger<Owner o> {
            void log(int x) accesses heap {
                let Object<heap> entry = new Object<heap>;
            }
        }
        class Task<Owner o> {
            void run(Logger<o> l) accesses o, heap {
                l.log(1);
            }
        }
        {
            (RHandle<SharedRegion : LT(4096) r> h) {
                let l = new Logger<r>;
                RT fork (new Task<r>).run(l);
            }
        }
    "#;
    match build(bad) {
        Err(e) => println!("\nheap-using RT thread rejected:\n{e}"),
        Ok(_) => println!("\nUNEXPECTEDLY ACCEPTED"),
    }
}
