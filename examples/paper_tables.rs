//! Regenerates the paper's evaluation tables (Figures 11 and 12) at a
//! reduced scale and prints them side by side with the paper's numbers.
//!
//! For the full-scale run use the CLI: `cargo run -p rtj-cli --release -- fig12`.
//!
//! ```sh
//! cargo run --release --example paper_tables
//! ```

use rtjava::corpus::{fig11, fig12, render_fig11, render_fig12, Scale};

fn main() {
    println!("{}", render_fig11(&fig11()));
    let scale = if std::env::args().any(|a| a == "--paper") {
        Scale::Paper
    } else {
        Scale::Smoke
    };
    println!("{}", render_fig12(&fig12(scale)));
    if scale == Scale::Smoke {
        println!("(smoke scale; pass --paper for the full-size workloads)");
    }
}
