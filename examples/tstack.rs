//! The paper's running example (Figures 5 and 6): `TStack`, a stack whose
//! nodes are **owned by the stack** (encapsulated) while the stack and its
//! elements live in **regions** chosen by the client.
//!
//! Demonstrates the legality matrix of Figure 5: `s1..s5` are legal,
//! `s6`/`s7` are rejected because an owner must outlive the first owner.
//!
//! ```sh
//! cargo run --example tstack
//! ```

use rtjava::interp::{build, run_source, RunConfig};
use rtjava::runtime::CheckMode;

const TSTACK_DECLS: &str = r#"
    class TStack<Owner stackOwner, Owner TOwner> {
        TNode<this, TOwner> head;
        void push(T<TOwner> value) {
            let TNode<this, TOwner> n = new TNode<this, TOwner>;
            n.init(value, this.head);
            this.head = n;
        }
        T<TOwner> pop() {
            let TNode<this, TOwner> h = this.head;
            if (h == null) { return null; }
            this.head = h.next;
            return h.value;
        }
    }
    class TNode<Owner nodeOwner, Owner TOwner> {
        T<TOwner> value;
        TNode<nodeOwner, TOwner> next;
        void init(T<TOwner> v, TNode<nodeOwner, TOwner> n) {
            this.value = v;
            this.next = n;
        }
    }
    class T<Owner o> { int x; }
"#;

fn main() {
    // Figure 5, lines 25-33: which TStack instantiations are legal?
    let legal = format!(
        "{TSTACK_DECLS}
        {{
            (RHandle<r1> h1) {{
                (RHandle<r2> h2) {{
                    let TStack<r2, r2> s1 = new TStack<r2, r2>;
                    let TStack<r2, r1> s2 = new TStack<r2, r1>;
                    let TStack<r1, immortal> s3 = new TStack<r1, immortal>;
                    let TStack<heap, immortal> s4 = new TStack<heap, immortal>;
                    let TStack<immortal, heap> s5 = new TStack<immortal, heap>;
                    print(\"s1..s5 all legal\");
                }}
            }}
        }}"
    );
    let out = run_source(&legal, RunConfig::new(CheckMode::Static)).unwrap();
    println!("{}", out.trace.join("\n"));

    for (name, ty) in [("s6", "TStack<r1, r2>"), ("s7", "TStack<heap, r1>")] {
        let illegal = format!(
            "{TSTACK_DECLS}
            {{
                (RHandle<r1> h1) {{
                    (RHandle<r2> h2) {{
                        let {ty} {name} = new {ty};
                    }}
                }}
            }}"
        );
        match build(&illegal) {
            Err(_) => println!("{name}: {ty:<20} rejected (as the paper requires)"),
            Ok(_) => println!("{name}: {ty:<20} UNEXPECTEDLY ACCEPTED"),
        }
    }

    // Encapsulation (property O3): the stack's nodes cannot be touched
    // from outside the stack.
    let poke = format!(
        "{TSTACK_DECLS}
        {{
            (RHandle<r> h) {{
                let TStack<r, r> s = new TStack<r, r>;
                let n = s.head; // forbidden: head is owned by s
            }}
        }}"
    );
    match build(&poke) {
        Err(_) => println!("s.head from outside   rejected (ownership encapsulation)"),
        Ok(_) => println!("s.head from outside   UNEXPECTEDLY ACCEPTED"),
    }

    // And of course the stack actually works.
    let run = format!(
        "{TSTACK_DECLS}
        {{
            (RHandle<r1> h1) {{
                (RHandle<r2> h2) {{
                    let TStack<r2, r1> s = new TStack<r2, r1>;
                    let i = 0;
                    while (i < 5) {{
                        let t = new T<r1>;
                        t.x = i * 10;
                        s.push(t);
                        i = i + 1;
                    }}
                    let p = s.pop();
                    while (p != null) {{
                        print(p.x);
                        p = s.pop();
                    }}
                }}
            }}
        }}"
    );
    let out = run_source(&run, RunConfig::new(CheckMode::Static)).unwrap();
    println!("popped: {}", out.trace.join(", "));
}
