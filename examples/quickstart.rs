//! Quickstart: parse, type-check, and run a small program in both check
//! modes, and show what the type system buys you.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! The CLI spelling of the same pipeline (see README / OBSERVABILITY.md):
//!
//! ```sh
//! rtjc check --stats --jobs 4 prog.rtj
//! rtjc run --dynamic --trace trace.jsonl --metrics=metrics.json prog.rtj
//! rtjc report metrics.json
//! ```

use rtjava::interp::{build, run_checked, run_source, RunConfig, TraceCapture};
use rtjava::runtime::{CheckKind, CheckMode};

fn main() {
    let src = r#"
        // A region-allocated linked list.
        class Node<Owner o> { int v; Node<o> next; }
        {
            (RHandle<r> h) {
                let Node<r> head = null;
                let i = 0;
                while (i < 10) {
                    let n = new Node<r>;
                    n.v = i * i;
                    n.next = head;
                    head = n;
                    i = i + 1;
                }
                let sum = 0;
                let p = head;
                while (p != null) {
                    sum = sum + p.v;
                    p = p.next;
                }
                print(sum);
            } // <- the region (and every node) is deleted here, O(1), no GC
        }
    "#;

    // 1. RTSJ mode: every reference store pays a dynamic assignment check.
    //    Capture the structured event trace while we're at it (JSONL; see
    //    OBSERVABILITY.md — `rtjc run --trace` is the CLI spelling).
    let mut cfg = RunConfig::new(CheckMode::Dynamic);
    cfg.events = TraceCapture::Full;
    let dynamic = run_source(src, cfg).unwrap();
    println!("trace          : {:?}", dynamic.trace);
    println!(
        "dynamic checks : {} performed ({} were assignment checks), {} cycles total",
        dynamic.metrics.checks_performed(),
        dynamic.metrics.check(CheckKind::Assignment).performed,
        dynamic.cycles
    );
    let events = dynamic.events.as_deref().unwrap_or_default();
    println!(
        "events         : {} captured; first: {}",
        events.len(),
        events.first().map_or("-", String::as_str)
    );

    // 2. Statically-checked mode: the ownership/region type system proved
    //    the checks can never fail, so they are gone — and the metrics
    //    registry counts every site it *elided* instead of running.
    let fast = run_source(src, RunConfig::new(CheckMode::Static)).unwrap();
    println!(
        "static         : {} checks performed, {} elided, {} cycles total ({:.2}x faster)",
        fast.metrics.checks_performed(),
        fast.metrics.checks_elided(),
        fast.cycles,
        dynamic.cycles as f64 / fast.cycles as f64
    );
    assert_eq!(
        fast.metrics.checks_elided(),
        dynamic.metrics.checks_performed(),
        "the static run elides exactly what the dynamic run performs"
    );

    // 3. And this is what it protects you from: a program that would
    //    create a dangling reference is rejected at compile time.
    let bad = r#"
        class Box<Owner o, Owner p> { Cell<p> kept; }
        class Cell<Owner o> { int v; }
        {
            (RHandle<outer> ho) {
                let Box<outer, outer> b = new Box<outer, outer>;
                (RHandle<inner> hi) {
                    // Storing an inner-region object in an outer-region
                    // object would dangle once `inner` is deleted.
                    let Box<outer, inner> oops = new Box<outer, inner>;
                }
            }
        }
    "#;
    match build(bad) {
        Err(e) => println!("\nrejected as expected:\n{e}"),
        Ok(checked) => {
            // (Not reached.) Running it would fail the RTSJ check instead.
            let out = run_checked(&checked, RunConfig::new(CheckMode::Dynamic));
            println!("unexpectedly ran: {:?}", out.error);
        }
    }
}
