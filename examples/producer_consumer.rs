//! The paper's Figure 8: two long-lived threads communicating through a
//! **subregion** of a shared region, with a typed **portal field** as the
//! hand-off point. The subregion is flushed after every iteration, so the
//! threads exchange an unbounded number of frames in bounded memory —
//! without ever touching the garbage-collected heap.
//!
//! ```sh
//! cargo run --example producer_consumer
//! ```

use rtjava::interp::{run_source, RunConfig};
use rtjava::runtime::CheckMode;

fn main() {
    let iters = 5;
    let src = format!(
        r#"
        regionKind BufferRegion extends SharedRegion {{
            subregion BufferSubRegion : LT(4096) NoRT b;
            Token<this> produced;
            Token<this> consumed;
        }}
        regionKind BufferSubRegion extends SharedRegion {{
            Frame<this> f;
        }}
        class Token<Owner o> {{ int n; }}
        class Frame<Owner o> {{ int data; }}

        class Producer<BufferRegion r> {{
            void run(RHandle<r> h, int iters) accesses r, heap {{
                let i = 0;
                while (i < iters) {{
                    let c = h.consumed;
                    while (c == null || c.n != i) {{ yield(); c = h.consumed; }}
                    (RHandle<BufferSubRegion r2> h2 = h.b) {{
                        let frame = new Frame<r2>;
                        frame.data = 1000 + i;   // get_image(frame)
                        h2.f = frame;            // publish through the portal
                    }}
                    let t = new Token<r>;
                    t.n = i + 1;
                    h.produced = t;              // wake up the consumer
                    i = i + 1;
                }}
            }}
        }}

        class Consumer<BufferRegion r> {{
            void run(RHandle<r> h, int iters) accesses r, heap {{
                let i = 0;
                while (i < iters) {{
                    let p = h.produced;
                    while (p == null || p.n != i + 1) {{ yield(); p = h.produced; }}
                    (RHandle<BufferSubRegion r2> h2 = h.b) {{
                        let frame = h2.f;
                        print(frame.data);       // process_image(frame)
                        h2.f = null;             // allow the flush
                    }}
                    let t = new Token<r>;
                    t.n = i + 1;
                    h.consumed = t;              // wake up the producer
                    i = i + 1;
                }}
            }}
        }}

        {{
            (RHandle<BufferRegion : VT r> h) {{
                let kick = new Token<r>;
                kick.n = 0;
                h.consumed = kick;
                fork (new Producer<r>).run(h, {iters});
                fork (new Consumer<r>).run(h, {iters});
            }}
        }}
        "#
    );

    let out = run_source(&src, RunConfig::new(CheckMode::Static)).unwrap();
    assert!(out.error.is_none(), "{:?}", out.error);
    println!("frames received : {}", out.trace.join(", "));
    println!("threads spawned : {}", out.stats.threads_spawned);
    println!(
        "subregion flushed {} times — one per iteration, so {} frames fit \
         in one 4 KiB LT subregion",
        out.stats.regions_flushed, iters
    );
    assert!(out.stats.regions_flushed >= iters as u64);
}
