//! **rtjava** — a from-scratch reproduction of *Ownership Types for Safe
//! Region-Based Memory Management in Real-Time Java* (Boyapati, Sălcianu,
//! Beebee, Rinard; PLDI 2003).
//!
//! The system has four layers, re-exported here:
//!
//! * [`lang`] — the core real-time Java-like language: lexer, parser,
//!   AST, pretty-printer (paper Figures 3/7/9/13);
//! * [`types`] — the ownership/region type system: the paper's primary
//!   contribution (Section 2, Appendix B). Well-typed programs never
//!   create dangling references and real-time threads never touch the
//!   garbage-collected heap (Theorems 3 and 4);
//! * [`runtime`] — a simulated RTSJ platform: LT/VT regions, shared
//!   regions with reference counts, subregions with typed portal fields,
//!   the RTSJ dynamic checks, a virtual clock, and a collector that
//!   pauses only regular threads;
//! * [`interp`] — an interpreter running checked programs on the runtime
//!   with the dynamic checks enabled (`Dynamic`, the RTSJ baseline),
//!   elided (`Static`, the paper's payoff), or verified at zero cost
//!   (`Audit`, used to validate the soundness theorems);
//! * [`corpus`] — the paper's evaluation programs and the harnesses that
//!   regenerate Figure 11 (annotation overhead) and Figure 12 (dynamic
//!   checking overhead);
//! * [`server`] — the multi-tenant region server: thousands of
//!   concurrent sessions (one [`runtime`] instance each) on a sharded
//!   work-stealing executor, with an open-loop load generator and
//!   per-check-mode tail-latency reports (`rtj-load/v1`; see
//!   `SERVER.md`).
//!
//! # Quickstart
//!
//! ```
//! use rtjava::interp::{run_source, RunConfig};
//! use rtjava::runtime::CheckMode;
//!
//! let src = r#"
//!     class Cell<Owner o> { int v; }
//!     {
//!         (RHandle<r> h) {
//!             let c = new Cell<r>;
//!             c.v = 42;
//!             print(c.v);
//!         }
//!     }
//! "#;
//! // RTSJ mode: dynamic checks run and cost time.
//! let dynamic = run_source(src, RunConfig::new(CheckMode::Dynamic)).unwrap();
//! // Statically-checked mode: the type system removed the checks.
//! let fast = run_source(src, RunConfig::new(CheckMode::Static)).unwrap();
//! assert_eq!(dynamic.trace, fast.trace);
//! assert!(dynamic.cycles >= fast.cycles);
//! ```

#![warn(missing_docs)]

pub use rtj_corpus as corpus;
pub use rtj_interp as interp;
pub use rtj_lang as lang;
pub use rtj_runtime as runtime;
pub use rtj_server as server;
pub use rtj_types as types;

pub use rtj_interp::{build, run_checked, run_source, RunConfig, RunOutcome};
pub use rtj_runtime::CheckMode;
pub use rtj_types::check_program;
